//! Regenerates **Figure 9**: `blackscholes` speedup (simulated cycles,
//! relative to single-tile execution) as the target tile count scales, for
//! four cache-coherence schemes: Dir4NB, Dir16NB, full-map directory, and
//! LimitLESS(4).
//!
//! Expected shapes (paper §4.4): full-map ≈ LimitLESS scale near-perfectly
//! to ~32 tiles before parallelization overhead and shrinking per-controller
//! DRAM bandwidth bite; Dir4NB stops scaling past 4 tiles and Dir16NB past
//! 16, because the heavily-shared read-only data keeps getting its sharers
//! evicted, serializing memory references.

use std::sync::Arc;

use graphite_bench::{f2, print_table, run_workload};
use graphite_config::{presets, CoherenceScheme};
use graphite_workloads::{BlackScholes, Workload};

fn main() {
    let schemes = [
        CoherenceScheme::DirNB { sharers: 4 },
        CoherenceScheme::DirNB { sharers: 16 },
        CoherenceScheme::FullMap,
        CoherenceScheme::Limitless { sharers: 4, trap_cycles: 100 },
    ];
    let tile_counts = [1u32, 2, 4, 8, 16, 32, 64, 128, 256];
    let mut rows = Vec::new();
    for scheme in schemes {
        let mut row = vec![scheme.label()];
        let mut base_cycles = None;
        let mut evictions = 0u64;
        for &tiles in &tile_counts {
            let w = Arc::new(BlackScholes::paper());
            let w2: Arc<dyn Workload> = Arc::clone(&w) as Arc<dyn Workload>;
            let cfg = presets::fig9_coherence_study(tiles, scheme);
            let r = run_workload(cfg, tiles, w2, |b| b);
            // Speedup over the PARSEC-style parallel region of interest
            // (serial input generation and verification excluded).
            let cycles = w.roi_cycles().expect("blackscholes measures an ROI") as f64;
            let base = *base_cycles.get_or_insert(cycles);
            evictions = r.mem.forced_evictions;
            row.push(f2(base / cycles));
        }
        row.push(evictions.to_string());
        rows.push(row);
    }
    let mut headers = vec!["scheme"];
    let labels: Vec<String> = tile_counts.iter().map(|t| format!("{t}t")).collect();
    headers.extend(labels.iter().map(String::as_str));
    headers.push("forced evict (256t)");
    print_table(
        "Figure 9: blackscholes speedup vs target tiles by coherence scheme",
        &headers,
        &rows,
    );
}
