//! Regenerates **Figure 4** (SPLASH speedup vs host cores, 32-tile target)
//! and **Table 2** (native vs simulated wall time; slowdowns on 1 and 8 host
//! machines).
//!
//! One real simulation per benchmark measures the event *mix*; event counts
//! are then extrapolated to the SPLASH default problem sizes and priced on
//! the modeled cluster (see `DESIGN.md`: only a single-core machine is
//! physically available, so simulator wall-clock on a cluster is modeled,
//! not measured). Extrapolation uses two factors per benchmark:
//!
//! * **compute scale** `K_c` — chosen so total instructions match the
//!   paper's published native run time (Table 2's native column is an
//!   *anchor input*; every simulated time and slowdown is model output);
//! * **footprint scale** `K_f = K_c^e` — coherence transactions follow the
//!   benchmark's data-footprint asymptotics: `e = 2/3` for O(n³)-compute /
//!   O(n²)-data kernels (cholesky, lu, water-nsquared, fmm), `e = 1` for
//!   kernels whose data scales with compute (fft, radix, ocean,
//!   water-spatial).

use std::sync::Arc;

use graphite::SimConfig;
use graphite_bench::{f2, median, print_table, run_workload};
use graphite_hostmodel::{project, project_steady_state, ClusterSpec, HostCostParams, HostEvents};
use graphite_workloads::{
    Cholesky, Fft, Fmm, Lu, Ocean, Radix, WaterNSquared, WaterSpatial, Workload,
};

struct AppSpec {
    w: Arc<dyn Workload>,
    /// Native execution time from the paper's Table 2, seconds.
    native_s: f64,
    /// Footprint-scaling exponent (see module docs).
    footprint_exp: f64,
}

fn bench_suite() -> Vec<AppSpec> {
    // Footprint exponents from each kernel's asymptotics at real scale,
    // where 3 MB-per-tile L2s absorb working sets: dense/n-body kernels
    // (O(n³) compute over O(n²) data) get 2/3; stencil relaxation (boundary
    // misses O(n) per O(n²) sweep) gets 1/2; streaming/scatter kernels whose
    // coherence boundaries shrink relative to their footprint get 3/4.
    vec![
        AppSpec { w: Arc::new(Cholesky::paper()), native_s: 1.99, footprint_exp: 2.0 / 3.0 },
        AppSpec { w: Arc::new(Fft::paper()), native_s: 0.02, footprint_exp: 0.85 },
        AppSpec { w: Arc::new(Fmm::paper()), native_s: 7.11, footprint_exp: 2.0 / 3.0 },
        AppSpec { w: Arc::new(Lu::paper(true)), native_s: 0.072, footprint_exp: 2.0 / 3.0 },
        AppSpec { w: Arc::new(Lu::paper(false)), native_s: 0.08, footprint_exp: 2.0 / 3.0 },
        AppSpec { w: Arc::new(Ocean::paper(true)), native_s: 0.33, footprint_exp: 0.5 },
        AppSpec { w: Arc::new(Ocean::paper(false)), native_s: 0.41, footprint_exp: 0.5 },
        AppSpec { w: Arc::new(Radix::paper()), native_s: 0.11, footprint_exp: 0.6 },
        AppSpec { w: Arc::new(WaterNSquared::paper()), native_s: 0.30, footprint_exp: 2.0 / 3.0 },
        AppSpec { w: Arc::new(WaterSpatial::paper()), native_s: 0.13, footprint_exp: 0.75 },
    ]
}

/// Extrapolates a measured event mix to the paper's problem size.
///
/// The anchor is the *memory reference count*: real applications issue
/// roughly 0.35 memory references per instruction, and loads/stores are the
/// one event our kernels emit exactly 1:1 with the algorithm (compute
/// batches are approximations). Instructions are set directly from the
/// native-time anchor; transactions follow the footprint exponent.
fn scale_events(e: &HostEvents, cluster: &ClusterSpec, native_s: f64, exp: f64) -> HostEvents {
    let native_instr = native_s * 8.0 * cluster.host_clock_ghz * 1e9 * cluster.native_ipc;
    let native_accesses = native_instr * 0.35;
    let measured_acc = e.accesses.iter().sum::<u64>().max(1) as f64;
    let k = (native_accesses / measured_acc).max(1.0);
    let kf = k.powf(exp);
    let k_instr = native_instr / e.total_instructions().max(1) as f64;
    let mul =
        |v: &[u64], k: f64| -> Vec<u64> { v.iter().map(|&x| (x as f64 * k) as u64).collect() };
    HostEvents {
        instructions: mul(&e.instructions, k_instr),
        accesses: mul(&e.accesses, k),
        transactions: mul(&e.transactions, kf),
        // Synchronization/control events amortize with problem size.
        control_ops: (e.control_ops as f64 * kf.sqrt()) as u64,
        user_msgs: (e.user_msgs as f64 * kf.sqrt()) as u64,
        barrier_releases: (e.barrier_releases as f64 * k) as u64,
        p2p_checks: (e.p2p_checks as f64 * k) as u64,
        p2p_sleeps: (e.p2p_sleeps as f64 * k) as u64,
        simulated_cycles: (e.simulated_cycles as f64 * k) as u64,
    }
}

fn cluster_for_cores(cores: u32) -> ClusterSpec {
    if cores <= 8 {
        ClusterSpec::single_machine(cores)
    } else {
        ClusterSpec::paper(cores / 8)
    }
}

fn main() {
    const TILES: u32 = 32;
    const THREADS: u32 = 32;
    let costs = HostCostParams::default();
    let core_points = [1u32, 2, 4, 8, 16, 32, 64];

    let mut fig4_rows = Vec::new();
    let mut table2_rows = Vec::new();
    let mut slow1 = Vec::new();
    let mut slow8 = Vec::new();

    for spec in bench_suite() {
        let name = spec.w.name();
        let cfg = SimConfig::builder().tiles(TILES).processes(8).build().expect("bench config");
        let start = std::time::Instant::now();
        let report = run_workload(cfg, THREADS, Arc::clone(&spec.w), |b| b);
        let measured = start.elapsed();
        let raw = HostEvents::from_report(&report);

        // Figure 4: speedup normalized to one host core.
        let mut row = vec![name.to_string()];
        let base = {
            let c = cluster_for_cores(1);
            let e = scale_events(&raw, &c, spec.native_s, spec.footprint_exp);
            project_steady_state(&e, &c, &costs).wall_seconds
        };
        for &cores in &core_points {
            let c = cluster_for_cores(cores);
            let e = scale_events(&raw, &c, spec.native_s, spec.footprint_exp);
            let wall = project_steady_state(&e, &c, &costs).wall_seconds;
            row.push(f2(base / wall));
        }
        row.push(format!("{:.1}s", measured.as_secs_f64()));
        fig4_rows.push(row);

        // Table 2: native time, 1-machine and 8-machine projections.
        let c1 = ClusterSpec::paper(1);
        let c8 = ClusterSpec::paper(8);
        let p1 = project(&scale_events(&raw, &c1, spec.native_s, spec.footprint_exp), &c1, &costs);
        let p8 = project(&scale_events(&raw, &c8, spec.native_s, spec.footprint_exp), &c8, &costs);
        slow1.push(p1.slowdown);
        slow8.push(p8.slowdown);
        table2_rows.push(vec![
            name.to_string(),
            format!("{:.3}", p1.native_seconds),
            f2(p1.wall_seconds),
            format!("{:.0}x", p1.slowdown),
            f2(p8.wall_seconds),
            format!("{:.0}x", p8.slowdown),
        ]);
    }

    let mut headers = vec!["benchmark"];
    let labels: Vec<String> = core_points.iter().map(|c| format!("{c} cores")).collect();
    headers.extend(labels.iter().map(String::as_str));
    headers.push("sim wall (this host)");
    print_table(
        "Figure 4: speedup vs host cores (32-tile target, modeled cluster)",
        &headers,
        &fig4_rows,
    );

    table2_rows.push(vec![
        "Mean".into(),
        String::new(),
        String::new(),
        format!("{:.0}x", slow1.iter().sum::<f64>() / slow1.len() as f64),
        String::new(),
        format!("{:.0}x", slow8.iter().sum::<f64>() / slow8.len() as f64),
    ]);
    table2_rows.push(vec![
        "Median".into(),
        String::new(),
        String::new(),
        format!("{:.0}x", median(&slow1)),
        String::new(),
        format!("{:.0}x", median(&slow8)),
    ]);
    print_table(
        "Table 2: native vs simulated time (modeled cluster; times in seconds)",
        &["benchmark", "native", "1mc time", "1mc slowdown", "8mc time", "8mc slowdown"],
        &table2_rows,
    );
}
