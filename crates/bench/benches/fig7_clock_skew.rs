//! Regenerates **Figure 7**: clock skew over the course of an `fmm` run for
//! each synchronization model.
//!
//! A background sampler reads every tile clock periodically; each interval
//! records the max deviation above and below the mean ("approximate global
//! cycle count"), matching the paper's measurement method. Expected shapes:
//! Lax skews by orders of magnitude more than LaxP2P (whose skew hovers
//! around the configured slack), and LaxBarrier pins skew near the quantum.

use std::sync::Arc;
use std::time::Duration;

use graphite::{Sim, SimConfig};
use graphite_bench::{apply_obs_env, export_observability, print_table};
use graphite_config::SyncModel;
use graphite_sync::SkewSampler;
use graphite_workloads::{Fmm, Workload};

fn main() {
    // Slack/quantum scaled to the scaled-down workload (see fig6 bench).
    let models = [
        ("Lax", SyncModel::Lax),
        ("LaxP2P", SyncModel::LaxP2P { slack: 5_000, check_interval: 500 }),
        ("LaxBarrier", SyncModel::LaxBarrier { quantum: 1_000 }),
    ];
    let mut summary = Vec::new();
    for (name, model) in models {
        let w = Fmm { n: 768, cells: 6, seed: 43 };
        let cfg =
            SimConfig::builder().tiles(8).processes(2).sync(model).build().expect("bench config");
        let sim = apply_obs_env(Sim::builder(cfg)).build().expect("simulator");
        let sampler = Arc::new(SkewSampler::new(sim.clock_handles()));
        let handle = sampler.spawn_periodic(Duration::from_micros(500));
        let report = sim.run(move |ctx| w.run(ctx, 8));
        sampler.stop();
        handle.join().expect("sampler thread");
        export_observability(&format!("fig7_{name}"), &report);

        let samples = sampler.samples();
        println!("\n== Figure 7 ({name}): skew trace over {} samples ==", samples.len());
        println!(
            "{:>8}  {:>14}  {:>12}  {:>12}",
            "t (ms)", "mean cycles", "max above", "max below"
        );
        // Print up to 20 evenly spaced intervals.
        let step = (samples.len() / 20).max(1);
        for s in samples.iter().step_by(step) {
            println!(
                "{:>8}  {:>14.0}  {:>12.0}  {:>12.0}",
                s.wall_ms, s.mean, s.max_above, s.max_below
            );
        }
        // Bracket the parallel region: from the first sample where every
        // clock advanced to the last. Samples outside are the serial input
        // and verification phases, whose skew reflects idle tiles rather
        // than the synchronization model. Samples *inside* that are not
        // all-moving stay in: a LaxP2P sleep or barrier wait is model
        // behaviour.
        let parallel_spread = {
            let first = samples.iter().position(|s| s.all_moving);
            let last = samples.iter().rposition(|s| s.all_moving);
            match (first, last) {
                (Some(a), Some(b)) if a <= b => samples[a..=b]
                    .iter()
                    .map(graphite_sync::SkewSample::spread)
                    .fold(0.0f64, f64::max),
                _ => sampler.max_spread(),
            }
        };
        summary.push(vec![
            name.to_string(),
            format!("{parallel_spread:.0}"),
            format!("{}", report.simulated_cycles.0),
            format!("{}", report.sync.p2p_sleeps),
            format!("{}", report.sync.barrier_releases),
        ]);
    }
    print_table(
        "Figure 7 summary: maximum clock skew by synchronization model",
        &[
            "model",
            "max spread, parallel region (cy)",
            "sim cycles",
            "p2p sleeps",
            "barrier releases",
        ],
        &summary,
    );
}
