//! Self-benchmark of the simulated-memory hot path (`MemorySystem`'s
//! per-access pipeline): the reproduction's equivalent of the paper's
//! simulator-performance study (§3.7, Figure 4 / Table 2), but measuring
//! *this simulator's* throughput on *this host* so every subsequent PR has a
//! perf trajectory to compare against.
//!
//! Three workload families, each at 1 / 4 / 16 tiles with one host thread
//! per tile:
//!
//! * **hit-dominated** — every access an L1D hit in a tile-private working
//!   set; isolates the lock + counter + fast-path cost per access;
//! * **miss-dominated** — a cyclic walk over a working set 1.5× the L2, so
//!   every access is a capacity miss through the directory and DRAM models;
//! * **dense matmul** — one real workload (`matrix-multiply` through the
//!   full `Sim` front end) for an end-to-end ops/sec and wall-clock
//!   slowdown figure.
//!
//! Results are appended to `BENCH_hotpath.json` at the repo root (override
//! with `GRAPHITE_HOTPATH_OUT`). The file keeps one object per run label
//! (`GRAPHITE_HOTPATH_LABEL`, default `current`); re-running a label
//! replaces that section and preserves the others, so `baseline` survives
//! optimization runs. `GRAPHITE_HOTPATH_OPS` caps per-thread hit-path
//! operations (CI smoke mode); `GRAPHITE_HOTPATH_MATMUL_N` sets the matmul
//! dimension. `GRAPHITE_HOTPATH_CASES` (comma-separated name prefixes)
//! restricts which cases run, and `GRAPHITE_HOTPATH_BUDGET_S` makes the
//! binary exit non-zero when total wall time exceeds the budget (CI smoke).
//!
//! Microbench rows drive each tile thread on its own accumulated clock
//! (`now += latency`), so they report real simulated cycles and a real
//! wall/simulated slowdown, not placeholders. The `miss_*_nomshr` rows
//! re-run the miss walk with the pipelined miss path disabled
//! (`mshr_entries = 1`, `dir_batch = 0`, `read_probe = false`) for a
//! like-for-like before/after within one binary.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use graphite::SimConfig;
use graphite_base::{Cycles, GlobalProgress, HostProf, TileId};
use graphite_bench::run_workload;
use graphite_config::presets;
use graphite_memory::{Addr, MemorySystem};
use graphite_network::Network;
use graphite_trace::{Obs, TraceOptions};
use graphite_workloads::{MatMul, Workload};

/// One measured case.
struct CaseResult {
    name: String,
    tiles: u32,
    /// Guest memory operations performed (line segments).
    ops: u64,
    wall_s: f64,
    /// Million guest memory ops per host second.
    mops: f64,
    /// Simulated cycles (0 for raw microworkloads driven at fixed time).
    sim_cycles: u64,
    /// Host wall seconds per simulated target second (0 when undefined).
    slowdown: f64,
    /// Optional case-specific JSON object spliced in as `"detail"`.
    extra: Option<String>,
}

impl CaseResult {
    fn to_json(&self) -> String {
        let detail = match &self.extra {
            Some(d) => format!(", \"detail\": {d}"),
            None => String::new(),
        };
        format!(
            concat!(
                "{{\"tiles\": {}, \"ops\": {}, \"wall_s\": {:.4}, ",
                "\"mops_per_s\": {:.4}, \"sim_cycles\": {}, \"slowdown\": {:.2}{}}}"
            ),
            self.tiles, self.ops, self.wall_s, self.mops, self.sim_cycles, self.slowdown, detail
        )
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Builds the memory system for the microbenches. `pipelined: false` turns
/// the new miss-path machinery off (one outstanding miss per tile, no
/// request combining, no lock-free probe) for before/after comparison rows.
fn build_mem(tiles: u32, small_l2: bool, pipelined: bool) -> (Arc<MemorySystem>, f64) {
    let mut cfg = presets::paper_default(tiles);
    if small_l2 {
        // Shrink the L2 so the miss workload's working set stays small while
        // still overflowing the cache on every access. Drop associativity to
        // 16 so the set count stays a power of two (mask-indexed sets).
        if let Some(l2) = cfg.target.l2.as_mut() {
            l2.size_bytes = 256 * 1024;
            l2.associativity = 16;
        }
    }
    if !pipelined {
        cfg.memory.mshr_entries = 1;
        cfg.memory.dir_batch = 0;
        cfg.memory.read_probe = false;
    }
    let clock_ghz = cfg.target.clock_ghz;
    let net = Arc::new(Network::new(&cfg, Arc::new(GlobalProgress::new(tiles as usize))));
    (Arc::new(MemorySystem::new(&cfg, net, false)), clock_ghz)
}

/// Runs `per_thread` accesses on every tile concurrently; `addr_of` maps
/// (tile, iteration) to the address each thread touches. Each thread
/// advances its own clock by the modeled latency of every access. Returns
/// (wall seconds, simulated cycles = slowest thread's final clock).
fn drive(
    mem: &Arc<MemorySystem>,
    tiles: u32,
    per_thread: u64,
    addr_of: impl Fn(u32, u64) -> u64 + Send + Sync + Copy + 'static,
) -> (f64, u64) {
    let start_gate = Arc::new(Barrier::new(tiles as usize + 1));
    let handles: Vec<_> = (0..tiles)
        .map(|t| {
            let mem = Arc::clone(mem);
            let gate = Arc::clone(&start_gate);
            std::thread::spawn(move || {
                let mut buf = [0u8; 8];
                let mut now = Cycles::ZERO;
                gate.wait();
                for i in 0..per_thread {
                    let addr = Addr(addr_of(t, i));
                    if i % 3 == 0 {
                        now += mem.write(TileId(t), now, addr, &buf);
                    } else {
                        now += mem.read(TileId(t), now, addr, &mut buf);
                    }
                }
                now.0
            })
        })
        .collect();
    start_gate.wait();
    let t0 = Instant::now();
    let mut sim_cycles = 0u64;
    for h in handles {
        sim_cycles = sim_cycles.max(h.join().expect("bench thread"));
    }
    (t0.elapsed().as_secs_f64(), sim_cycles)
}

/// Assembles a microbench row with real simulated cycles and slowdown.
fn micro_result(name: String, tiles: u32, ops: u64, wall: f64, sim: u64, ghz: f64) -> CaseResult {
    let sim_s = Cycles(sim).as_secs(ghz);
    CaseResult {
        name,
        tiles,
        ops,
        wall_s: wall,
        mops: ops as f64 / wall / 1e6,
        sim_cycles: sim,
        slowdown: if sim_s > 0.0 { wall / sim_s } else { 0.0 },
        extra: None,
    }
}

/// Hit-dominated: a 32-line (2 KiB) tile-private set, warmed first, so every
/// measured access is an L1D (or sole-level) hit.
fn bench_hits(tiles: u32, per_thread: u64) -> CaseResult {
    const SET_BYTES: u64 = 32 * 64;
    let (mem, ghz) = build_mem(tiles, false, true);
    let addr_of = move |t: u32, i: u64| ((t as u64) << 24) | ((i * 8) % SET_BYTES);
    // Warm: write the whole set so subsequent loads and stores both hit.
    for t in 0..tiles {
        for i in 0..SET_BYTES / 8 {
            mem.write(TileId(t), Cycles(0), Addr(addr_of(t, i)), &[0u8; 8]);
        }
    }
    let (wall, sim) = drive(&mem, tiles, per_thread, addr_of);
    let ops = tiles as u64 * per_thread;
    micro_result(format!("hit_{tiles}t"), tiles, ops, wall, sim, ghz)
}

/// Same hit-dominated workload with per-tile event tracing enabled: every
/// access emits a `MemOpStart`/`MemOpDone` pair into the tracer rings, so
/// `hit_16t_traced / hit_16t` is the cost of always-on tracing. Tracks the
/// ROADMAP item on batched tracer emission.
fn bench_hits_traced(tiles: u32, per_thread: u64) -> CaseResult {
    const SET_BYTES: u64 = 32 * 64;
    let capacity = env_u64("GRAPHITE_HOTPATH_TRACE_CAP", 4096) as usize;
    let cfg = presets::paper_default(tiles);
    let ghz = cfg.target.clock_ghz;
    let net = Arc::new(Network::new(&cfg, Arc::new(GlobalProgress::new(tiles as usize))));
    let obs = Obs::new(tiles as usize, TraceOptions { enabled: true, capacity, flows: false });
    let mem = Arc::new(MemorySystem::with_obs(&cfg, net, false, &obs));
    let addr_of = move |t: u32, i: u64| ((t as u64) << 24) | ((i * 8) % SET_BYTES);
    for t in 0..tiles {
        for i in 0..SET_BYTES / 8 {
            mem.write(TileId(t), Cycles(0), Addr(addr_of(t, i)), &[0u8; 8]);
        }
    }
    let (wall, sim) = drive(&mem, tiles, per_thread, addr_of);
    let ops = tiles as u64 * per_thread;
    micro_result(format!("hit_{tiles}t_traced"), tiles, ops, wall, sim, ghz)
}

/// Same hit-dominated workload with tracing *and* causal flow spans enabled:
/// `hit_16t_flows / hit_16t_traced` is the marginal cost of the flow gate on
/// a path that never mints a flow (hits stay local), and
/// `hit_16t_flows / hit_16t` the total enabled-observability overhead.
fn bench_hits_flows(tiles: u32, per_thread: u64) -> CaseResult {
    const SET_BYTES: u64 = 32 * 64;
    let capacity = env_u64("GRAPHITE_HOTPATH_TRACE_CAP", 4096) as usize;
    let cfg = presets::paper_default(tiles);
    let ghz = cfg.target.clock_ghz;
    let net = Arc::new(Network::new(&cfg, Arc::new(GlobalProgress::new(tiles as usize))));
    let obs = Obs::new(tiles as usize, TraceOptions { enabled: true, capacity, flows: true });
    let mem = Arc::new(MemorySystem::with_obs(&cfg, net, false, &obs));
    let addr_of = move |t: u32, i: u64| ((t as u64) << 24) | ((i * 8) % SET_BYTES);
    for t in 0..tiles {
        for i in 0..SET_BYTES / 8 {
            mem.write(TileId(t), Cycles(0), Addr(addr_of(t, i)), &[0u8; 8]);
        }
    }
    let (wall, sim) = drive(&mem, tiles, per_thread, addr_of);
    let ops = tiles as u64 * per_thread;
    micro_result(format!("hit_{tiles}t_flows"), tiles, ops, wall, sim, ghz)
}

/// Miss-dominated: a cyclic sequential walk over 1.5× the (shrunken) L2
/// capacity — with LRU replacement every access is a capacity miss running
/// the full directory + DRAM transaction.
fn bench_misses(tiles: u32, per_thread: u64, pipelined: bool) -> CaseResult {
    let (mem, ghz) = build_mem(tiles, true, pipelined);
    // 256 KiB L2 = 4096 lines; walk 6144 lines (384 KiB) per tile.
    const WALK_LINES: u64 = 6144;
    let addr_of = move |t: u32, i: u64| ((t as u64) << 24) | ((i % WALK_LINES) * 64);
    let (wall, sim) = drive(&mem, tiles, per_thread, addr_of);
    let ops = tiles as u64 * per_thread;
    let suffix = if pipelined { "" } else { "_nomshr" };
    micro_result(format!("miss_{tiles}t{suffix}"), tiles, ops, wall, sim, ghz)
}

/// One real workload through the full front end: row-banded dense matmul on
/// a 16-tile target with 16 guest threads.
fn bench_matmul(n: u64) -> CaseResult {
    const TILES: u32 = 16;
    let w: Arc<dyn Workload> = Arc::new(MatMul::with_n(n));
    let cfg = SimConfig::builder().tiles(TILES).build().expect("bench config");
    let clock_ghz = cfg.target.clock_ghz;
    let t0 = Instant::now();
    let report = run_workload(cfg, TILES, w, |b| b);
    let wall = t0.elapsed().as_secs_f64();
    let ops = report.mem.accesses();
    let sim_s = report.simulated_cycles.as_secs(clock_ghz);
    CaseResult {
        name: format!("matmul_n{n}"),
        tiles: TILES,
        ops,
        wall_s: wall,
        mops: ops as f64 / wall / 1e6,
        sim_cycles: report.simulated_cycles.0,
        slowdown: if sim_s > 0.0 { wall / sim_s } else { 0.0 },
        extra: None,
    }
}

/// Builds the miss-walk memory system with a host profiler attached (`None`
/// = profiling compiled in but disabled, the production default).
fn build_mem_prof(tiles: u32, prof: &Arc<HostProf>) -> (Arc<MemorySystem>, f64) {
    let mut cfg = presets::paper_default(tiles);
    if let Some(l2) = cfg.target.l2.as_mut() {
        l2.size_bytes = 256 * 1024;
        l2.associativity = 16;
    }
    let clock_ghz = cfg.target.clock_ghz;
    let net = Arc::new(Network::new(&cfg, Arc::new(GlobalProgress::new(tiles as usize))));
    let obs = Obs::new(tiles as usize, TraceOptions::default()).with_hostprof(Arc::clone(prof));
    (Arc::new(MemorySystem::with_obs(&cfg, net, false, &obs)), clock_ghz)
}

const WALK_LINES: u64 = 6144;

fn miss_addr(t: u32, i: u64) -> u64 {
    ((t as u64) << 24) | ((i % WALK_LINES) * 64)
}

/// Miss walk with the host profiler *on* at the default 1-in-64 sampling:
/// the per-stage breakdown and the attribution ratio land in the JSON so
/// every label records where miss-path host time went.
fn bench_misses_hostprof(tiles: u32, per_thread: u64) -> CaseResult {
    let sample = 64; // HostProfConfig::default().sample
    let prof = HostProf::new(sample, 0); // counters only, no timeline buffer
    let (mem, ghz) = build_mem_prof(tiles, &prof);
    let (wall, sim) = drive(&mem, tiles, per_thread, miss_addr);
    let ops = tiles as u64 * per_thread;
    let snap = prof.snapshot();
    let mut stages: Vec<_> = snap.stages.iter().filter(|s| s.timed > 0).collect();
    stages.sort_by(|a, b| b.est_self_ns().total_cmp(&a.est_self_ns()));
    let rows: Vec<String> = stages
        .iter()
        .take(8)
        .map(|s| {
            format!(
                "\"{}\": {{\"count\": {}, \"self_ns_per_op\": {:.0}}}",
                s.stage.name(),
                s.count,
                s.self_ns_per_op()
            )
        })
        .collect();
    let attribution = snap.miss_attribution().unwrap_or(0.0);
    let extra = format!(
        "{{\"sample\": {sample}, \"miss_attribution\": {attribution:.3}, \"stages\": {{{}}}}}",
        rows.join(", ")
    );
    let mut r = micro_result(format!("miss_{tiles}t_hostprof"), tiles, ops, wall, sim, ghz);
    r.extra = Some(extra);
    r
}

/// On/off overhead of the profiler on the miss walk: alternating
/// enabled/disabled runs (interleaved so thermal and allocator drift hits
/// both arms equally), medians of each arm, overhead = on/off − 1. The
/// acceptance bar is "within noise" at the default sampling interval.
fn bench_hostprof_overhead(tiles: u32, per_thread: u64) -> CaseResult {
    const ROUNDS: usize = 3;
    let mut on_walls = Vec::with_capacity(ROUNDS);
    let mut off_walls = Vec::with_capacity(ROUNDS);
    let mut sim = 0u64;
    let mut ghz = 1.0;
    for _ in 0..ROUNDS {
        let prof = HostProf::new(64, 0);
        let (mem, g) = build_mem_prof(tiles, &prof);
        let (w_on, s) = drive(&mem, tiles, per_thread, miss_addr);
        on_walls.push(w_on);
        let (mem, _) = build_mem_prof(tiles, &HostProf::disabled());
        let (w_off, _) = drive(&mem, tiles, per_thread, miss_addr);
        off_walls.push(w_off);
        sim = s;
        ghz = g;
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let on = median(&mut on_walls);
    let off = median(&mut off_walls);
    let overhead = on / off - 1.0;
    let ops = tiles as u64 * per_thread;
    let mut r = micro_result(format!("hostprof_overhead_{tiles}t"), tiles, ops, on, sim, ghz);
    r.extra = Some(format!(
        "{{\"on_wall_s\": {on:.4}, \"off_wall_s\": {off:.4}, \"overhead_frac\": {overhead:.4}}}"
    ));
    r
}

/// Extracts `"label": { ... }` sections (balanced braces) from a previous
/// results file so re-running one label preserves the others.
fn existing_runs(doc: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let Some(runs_at) = doc.find("\"runs\"") else { return out };
    let bytes = doc.as_bytes();
    let mut pos = doc[runs_at..].find('{').map(|i| runs_at + i + 1).unwrap_or(doc.len());
    while pos < bytes.len() {
        let Some(q0) = doc[pos..].find('"').map(|i| pos + i) else { break };
        let Some(q1) = doc[q0 + 1..].find('"').map(|i| q0 + 1 + i) else { break };
        let label = doc[q0 + 1..q1].to_string();
        let Some(open) = doc[q1..].find('{').map(|i| q1 + i) else { break };
        let mut depth = 0usize;
        let mut end = open;
        for (i, &b) in bytes[open..].iter().enumerate() {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = open + i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        if end == open {
            break; // unbalanced; stop rather than emit garbage
        }
        out.push((label, doc[open..end].to_string()));
        pos = end;
        // The outer "runs" object ends at the next unmatched '}'.
        if doc[pos..].trim_start().starts_with('}') {
            break;
        }
    }
    out
}

fn main() {
    let bench_t0 = Instant::now();
    let per_thread = env_u64("GRAPHITE_HOTPATH_OPS", 1_000_000);
    let miss_per_thread = (per_thread / 10).max(1_000);
    let matmul_n = env_u64("GRAPHITE_HOTPATH_MATMUL_N", 48);
    let label = std::env::var("GRAPHITE_HOTPATH_LABEL").unwrap_or_else(|_| "current".into());
    let out_path = std::env::var("GRAPHITE_HOTPATH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_hotpath.json", env!("CARGO_MANIFEST_DIR")));
    let case_filter = std::env::var("GRAPHITE_HOTPATH_CASES").ok();
    let wants = |name: &str| {
        case_filter.as_deref().is_none_or(|f| {
            f.split(',').any(|p| !p.trim().is_empty() && name.starts_with(p.trim()))
        })
    };

    println!("hot-path self-benchmark: {per_thread} hit ops/thread, {miss_per_thread} miss ops/thread, matmul n={matmul_n}");
    let mut results = Vec::new();
    let push = |r: CaseResult, results: &mut Vec<CaseResult>| {
        println!(
            "  {:<16} {:>8.2} Mops/s  ({:.3}s wall, {} sim cycles, slowdown {:.1}x)",
            r.name, r.mops, r.wall_s, r.sim_cycles, r.slowdown
        );
        results.push(r);
    };
    for tiles in [1u32, 4, 16] {
        if wants(&format!("hit_{tiles}t")) {
            push(bench_hits(tiles, per_thread), &mut results);
        }
    }
    if wants("hit_16t_traced") {
        push(bench_hits_traced(16, per_thread), &mut results);
    }
    if wants("hit_16t_flows") {
        push(bench_hits_flows(16, per_thread), &mut results);
    }
    for tiles in [1u32, 4, 16] {
        if wants(&format!("miss_{tiles}t")) {
            push(bench_misses(tiles, miss_per_thread, true), &mut results);
        }
    }
    for tiles in [1u32, 16] {
        if wants(&format!("miss_{tiles}t_nomshr")) {
            push(bench_misses(tiles, miss_per_thread, false), &mut results);
        }
    }
    if wants("miss_1t_hostprof") {
        push(bench_misses_hostprof(1, miss_per_thread), &mut results);
    }
    if wants("hostprof_overhead_1t") {
        push(bench_hostprof_overhead(1, miss_per_thread), &mut results);
    }
    if wants(&format!("matmul_n{matmul_n}")) {
        push(bench_matmul(matmul_n), &mut results);
    }

    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let section = {
        let cases: Vec<String> =
            results.iter().map(|r| format!("      \"{}\": {}", r.name, r.to_json())).collect();
        format!(
            "{{\n      \"host_threads\": {},\n      \"hit_ops_per_thread\": {},\n{}\n    }}",
            host_threads,
            per_thread,
            cases.join(",\n")
        )
    };

    let mut runs: Vec<(String, String)> = std::fs::read_to_string(&out_path)
        .map(|doc| existing_runs(&doc))
        .unwrap_or_default()
        .into_iter()
        .filter(|(l, _)| *l != label)
        .collect();
    runs.push((label.clone(), section));
    runs.sort_by(|a, b| a.0.cmp(&b.0));
    let body: Vec<String> = runs.iter().map(|(l, s)| format!("    \"{l}\": {s}")).collect();
    let doc = format!(
        "{{\n  \"schema\": \"graphite.bench.hotpath.v1\",\n  \"runs\": {{\n{}\n  }}\n}}\n",
        body.join(",\n")
    );
    std::fs::write(&out_path, &doc).expect("write BENCH_hotpath.json");
    println!("wrote {out_path} (label \"{label}\")");

    // CI smoke budget: fail loudly when the selected cases blow their
    // wall-clock allowance (a miss-path perf regression shows up here long
    // before it shows up in review).
    if let Ok(budget) = std::env::var("GRAPHITE_HOTPATH_BUDGET_S") {
        if let Ok(budget_s) = budget.parse::<f64>() {
            let total = bench_t0.elapsed().as_secs_f64();
            if total > budget_s {
                eprintln!("hotpath bench exceeded budget: {total:.1}s > {budget_s:.1}s");
                std::process::exit(1);
            }
            println!("within budget: {total:.1}s <= {budget_s:.1}s");
        }
    }
}
