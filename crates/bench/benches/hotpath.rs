//! Self-benchmark of the simulated-memory hot path (`MemorySystem`'s
//! per-access pipeline): the reproduction's equivalent of the paper's
//! simulator-performance study (§3.7, Figure 4 / Table 2), but measuring
//! *this simulator's* throughput on *this host* so every subsequent PR has a
//! perf trajectory to compare against.
//!
//! Three workload families, each at 1 / 4 / 16 tiles with one host thread
//! per tile:
//!
//! * **hit-dominated** — every access an L1D hit in a tile-private working
//!   set; isolates the lock + counter + fast-path cost per access;
//! * **miss-dominated** — a cyclic walk over a working set 1.5× the L2, so
//!   every access is a capacity miss through the directory and DRAM models;
//! * **dense matmul** — one real workload (`matrix-multiply` through the
//!   full `Sim` front end) for an end-to-end ops/sec and wall-clock
//!   slowdown figure.
//!
//! Results are appended to `BENCH_hotpath.json` at the repo root (override
//! with `GRAPHITE_HOTPATH_OUT`). The file keeps one object per run label
//! (`GRAPHITE_HOTPATH_LABEL`, default `current`); re-running a label
//! replaces that section and preserves the others, so `baseline` survives
//! optimization runs. `GRAPHITE_HOTPATH_OPS` caps per-thread hit-path
//! operations (CI smoke mode); `GRAPHITE_HOTPATH_MATMUL_N` sets the matmul
//! dimension.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use graphite::SimConfig;
use graphite_base::{Cycles, GlobalProgress, TileId};
use graphite_bench::run_workload;
use graphite_config::presets;
use graphite_memory::{Addr, MemorySystem};
use graphite_network::Network;
use graphite_trace::{Obs, TraceOptions};
use graphite_workloads::{MatMul, Workload};

/// One measured case.
struct CaseResult {
    name: String,
    tiles: u32,
    /// Guest memory operations performed (line segments).
    ops: u64,
    wall_s: f64,
    /// Million guest memory ops per host second.
    mops: f64,
    /// Simulated cycles (0 for raw microworkloads driven at fixed time).
    sim_cycles: u64,
    /// Host wall seconds per simulated target second (0 when undefined).
    slowdown: f64,
}

impl CaseResult {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"tiles\": {}, \"ops\": {}, \"wall_s\": {:.4}, ",
                "\"mops_per_s\": {:.4}, \"sim_cycles\": {}, \"slowdown\": {:.2}}}"
            ),
            self.tiles, self.ops, self.wall_s, self.mops, self.sim_cycles, self.slowdown
        )
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn build_mem(tiles: u32, small_l2: bool) -> Arc<MemorySystem> {
    let mut cfg = presets::paper_default(tiles);
    if small_l2 {
        // Shrink the L2 so the miss workload's working set stays small while
        // still overflowing the cache on every access.
        if let Some(l2) = cfg.target.l2.as_mut() {
            l2.size_bytes = 256 * 1024;
        }
    }
    let net = Arc::new(Network::new(&cfg, Arc::new(GlobalProgress::new(tiles as usize))));
    Arc::new(MemorySystem::new(&cfg, net, false))
}

/// Runs `per_thread` accesses on every tile concurrently; `addr_of` maps
/// (tile, iteration) to the address each thread touches. Returns wall time.
fn drive(
    mem: &Arc<MemorySystem>,
    tiles: u32,
    per_thread: u64,
    addr_of: impl Fn(u32, u64) -> u64 + Send + Sync + Copy + 'static,
) -> f64 {
    let start_gate = Arc::new(Barrier::new(tiles as usize + 1));
    let handles: Vec<_> = (0..tiles)
        .map(|t| {
            let mem = Arc::clone(mem);
            let gate = Arc::clone(&start_gate);
            std::thread::spawn(move || {
                let mut buf = [0u8; 8];
                gate.wait();
                for i in 0..per_thread {
                    let addr = Addr(addr_of(t, i));
                    if i % 3 == 0 {
                        mem.write(TileId(t), Cycles(i), addr, &buf);
                    } else {
                        mem.read(TileId(t), Cycles(i), addr, &mut buf);
                    }
                }
            })
        })
        .collect();
    start_gate.wait();
    let t0 = Instant::now();
    for h in handles {
        h.join().expect("bench thread");
    }
    t0.elapsed().as_secs_f64()
}

/// Hit-dominated: a 32-line (2 KiB) tile-private set, warmed first, so every
/// measured access is an L1D (or sole-level) hit.
fn bench_hits(tiles: u32, per_thread: u64) -> CaseResult {
    const SET_BYTES: u64 = 32 * 64;
    let mem = build_mem(tiles, false);
    let addr_of = move |t: u32, i: u64| ((t as u64) << 24) | ((i * 8) % SET_BYTES);
    // Warm: write the whole set so subsequent loads and stores both hit.
    for t in 0..tiles {
        for i in 0..SET_BYTES / 8 {
            mem.write(TileId(t), Cycles(0), Addr(addr_of(t, i)), &[0u8; 8]);
        }
    }
    let wall = drive(&mem, tiles, per_thread, addr_of);
    let ops = tiles as u64 * per_thread;
    CaseResult {
        name: format!("hit_{tiles}t"),
        tiles,
        ops,
        wall_s: wall,
        mops: ops as f64 / wall / 1e6,
        sim_cycles: 0,
        slowdown: 0.0,
    }
}

/// Same hit-dominated workload with per-tile event tracing enabled: every
/// access emits a `MemOpStart`/`MemOpDone` pair into the tracer rings, so
/// `hit_16t_traced / hit_16t` is the cost of always-on tracing. Tracks the
/// ROADMAP item on batched tracer emission.
fn bench_hits_traced(tiles: u32, per_thread: u64) -> CaseResult {
    const SET_BYTES: u64 = 32 * 64;
    let capacity = env_u64("GRAPHITE_HOTPATH_TRACE_CAP", 4096) as usize;
    let cfg = presets::paper_default(tiles);
    let net = Arc::new(Network::new(&cfg, Arc::new(GlobalProgress::new(tiles as usize))));
    let obs = Obs::new(tiles as usize, TraceOptions { enabled: true, capacity, flows: false });
    let mem = Arc::new(MemorySystem::with_obs(&cfg, net, false, &obs));
    let addr_of = move |t: u32, i: u64| ((t as u64) << 24) | ((i * 8) % SET_BYTES);
    for t in 0..tiles {
        for i in 0..SET_BYTES / 8 {
            mem.write(TileId(t), Cycles(0), Addr(addr_of(t, i)), &[0u8; 8]);
        }
    }
    let wall = drive(&mem, tiles, per_thread, addr_of);
    let ops = tiles as u64 * per_thread;
    CaseResult {
        name: format!("hit_{tiles}t_traced"),
        tiles,
        ops,
        wall_s: wall,
        mops: ops as f64 / wall / 1e6,
        sim_cycles: 0,
        slowdown: 0.0,
    }
}

/// Same hit-dominated workload with tracing *and* causal flow spans enabled:
/// `hit_16t_flows / hit_16t_traced` is the marginal cost of the flow gate on
/// a path that never mints a flow (hits stay local), and
/// `hit_16t_flows / hit_16t` the total enabled-observability overhead.
fn bench_hits_flows(tiles: u32, per_thread: u64) -> CaseResult {
    const SET_BYTES: u64 = 32 * 64;
    let capacity = env_u64("GRAPHITE_HOTPATH_TRACE_CAP", 4096) as usize;
    let cfg = presets::paper_default(tiles);
    let net = Arc::new(Network::new(&cfg, Arc::new(GlobalProgress::new(tiles as usize))));
    let obs = Obs::new(tiles as usize, TraceOptions { enabled: true, capacity, flows: true });
    let mem = Arc::new(MemorySystem::with_obs(&cfg, net, false, &obs));
    let addr_of = move |t: u32, i: u64| ((t as u64) << 24) | ((i * 8) % SET_BYTES);
    for t in 0..tiles {
        for i in 0..SET_BYTES / 8 {
            mem.write(TileId(t), Cycles(0), Addr(addr_of(t, i)), &[0u8; 8]);
        }
    }
    let wall = drive(&mem, tiles, per_thread, addr_of);
    let ops = tiles as u64 * per_thread;
    CaseResult {
        name: format!("hit_{tiles}t_flows"),
        tiles,
        ops,
        wall_s: wall,
        mops: ops as f64 / wall / 1e6,
        sim_cycles: 0,
        slowdown: 0.0,
    }
}

/// Miss-dominated: a cyclic sequential walk over 1.5× the (shrunken) L2
/// capacity — with LRU replacement every access is a capacity miss running
/// the full directory + DRAM transaction.
fn bench_misses(tiles: u32, per_thread: u64) -> CaseResult {
    let mem = build_mem(tiles, true);
    // 256 KiB L2 = 4096 lines; walk 6144 lines (384 KiB) per tile.
    const WALK_LINES: u64 = 6144;
    let addr_of = move |t: u32, i: u64| ((t as u64) << 24) | ((i % WALK_LINES) * 64);
    let wall = drive(&mem, tiles, per_thread, addr_of);
    let ops = tiles as u64 * per_thread;
    CaseResult {
        name: format!("miss_{tiles}t"),
        tiles,
        ops,
        wall_s: wall,
        mops: ops as f64 / wall / 1e6,
        sim_cycles: 0,
        slowdown: 0.0,
    }
}

/// One real workload through the full front end: row-banded dense matmul on
/// a 16-tile target with 16 guest threads.
fn bench_matmul(n: u64) -> CaseResult {
    const TILES: u32 = 16;
    let w: Arc<dyn Workload> = Arc::new(MatMul::with_n(n));
    let cfg = SimConfig::builder().tiles(TILES).build().expect("bench config");
    let clock_ghz = cfg.target.clock_ghz;
    let t0 = Instant::now();
    let report = run_workload(cfg, TILES, w, |b| b);
    let wall = t0.elapsed().as_secs_f64();
    let ops = report.mem.accesses();
    let sim_s = report.simulated_cycles.as_secs(clock_ghz);
    CaseResult {
        name: format!("matmul_n{n}"),
        tiles: TILES,
        ops,
        wall_s: wall,
        mops: ops as f64 / wall / 1e6,
        sim_cycles: report.simulated_cycles.0,
        slowdown: if sim_s > 0.0 { wall / sim_s } else { 0.0 },
    }
}

/// Extracts `"label": { ... }` sections (balanced braces) from a previous
/// results file so re-running one label preserves the others.
fn existing_runs(doc: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let Some(runs_at) = doc.find("\"runs\"") else { return out };
    let bytes = doc.as_bytes();
    let mut pos = doc[runs_at..].find('{').map(|i| runs_at + i + 1).unwrap_or(doc.len());
    while pos < bytes.len() {
        let Some(q0) = doc[pos..].find('"').map(|i| pos + i) else { break };
        let Some(q1) = doc[q0 + 1..].find('"').map(|i| q0 + 1 + i) else { break };
        let label = doc[q0 + 1..q1].to_string();
        let Some(open) = doc[q1..].find('{').map(|i| q1 + i) else { break };
        let mut depth = 0usize;
        let mut end = open;
        for (i, &b) in bytes[open..].iter().enumerate() {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = open + i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        if end == open {
            break; // unbalanced; stop rather than emit garbage
        }
        out.push((label, doc[open..end].to_string()));
        pos = end;
        // The outer "runs" object ends at the next unmatched '}'.
        if doc[pos..].trim_start().starts_with('}') {
            break;
        }
    }
    out
}

fn main() {
    let per_thread = env_u64("GRAPHITE_HOTPATH_OPS", 1_000_000);
    let miss_per_thread = (per_thread / 10).max(1_000);
    let matmul_n = env_u64("GRAPHITE_HOTPATH_MATMUL_N", 48);
    let label = std::env::var("GRAPHITE_HOTPATH_LABEL").unwrap_or_else(|_| "current".into());
    let out_path = std::env::var("GRAPHITE_HOTPATH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_hotpath.json", env!("CARGO_MANIFEST_DIR")));

    println!("hot-path self-benchmark: {per_thread} hit ops/thread, {miss_per_thread} miss ops/thread, matmul n={matmul_n}");
    let mut results = Vec::new();
    for tiles in [1u32, 4, 16] {
        let r = bench_hits(tiles, per_thread);
        println!("  {:<12} {:>8.2} Mops/s  ({:.3}s wall)", r.name, r.mops, r.wall_s);
        results.push(r);
    }
    let r = bench_hits_traced(16, per_thread);
    println!("  {:<12} {:>8.2} Mops/s  ({:.3}s wall)", r.name, r.mops, r.wall_s);
    results.push(r);
    let r = bench_hits_flows(16, per_thread);
    println!("  {:<12} {:>8.2} Mops/s  ({:.3}s wall)", r.name, r.mops, r.wall_s);
    results.push(r);
    for tiles in [1u32, 4, 16] {
        let r = bench_misses(tiles, miss_per_thread);
        println!("  {:<12} {:>8.2} Mops/s  ({:.3}s wall)", r.name, r.mops, r.wall_s);
        results.push(r);
    }
    let r = bench_matmul(matmul_n);
    println!(
        "  {:<12} {:>8.2} Mops/s  ({:.3}s wall, slowdown {:.0}x)",
        r.name, r.mops, r.wall_s, r.slowdown
    );
    results.push(r);

    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let section = {
        let cases: Vec<String> =
            results.iter().map(|r| format!("      \"{}\": {}", r.name, r.to_json())).collect();
        format!(
            "{{\n      \"host_threads\": {},\n      \"hit_ops_per_thread\": {},\n{}\n    }}",
            host_threads,
            per_thread,
            cases.join(",\n")
        )
    };

    let mut runs: Vec<(String, String)> = std::fs::read_to_string(&out_path)
        .map(|doc| existing_runs(&doc))
        .unwrap_or_default()
        .into_iter()
        .filter(|(l, _)| *l != label)
        .collect();
    runs.push((label.clone(), section));
    runs.sort_by(|a, b| a.0.cmp(&b.0));
    let body: Vec<String> = runs.iter().map(|(l, s)| format!("    \"{l}\": {s}")).collect();
    let doc = format!(
        "{{\n  \"schema\": \"graphite.bench.hotpath.v1\",\n  \"runs\": {{\n{}\n  }}\n}}\n",
        body.join(",\n")
    );
    std::fs::write(&out_path, &doc).expect("write BENCH_hotpath.json");
    println!("wrote {out_path} (label \"{label}\")");
}
