//! Ablation studies for the design decisions called out in `DESIGN.md` §5:
//!
//! 1. **Global-progress window size** (paper §3.6.1 prescribes "on the order
//!    of the number of tiles"): how the queue models' reference clock
//!    reacts to tiny vs huge windows.
//! 2. **LaxP2P slack** (paper §3.6.3 picked 100,000 cycles): the
//!    accuracy-vs-overhead trade-off curve.
//! 3. **Tile-to-process mapping** (paper §3.5 stripes tiles): striped vs
//!    packed mapping changes how much coherence traffic crosses processes.

use std::sync::Arc;

use graphite::{CoreKind, SimConfig};
use graphite_base::RunStats;
use graphite_bench::{f2, print_table, run_workload};
use graphite_config::{CacheProtocol, NetworkKind, SyncModel, TileMapping};
use graphite_core_model::{CoreParams, OooParams};
use graphite_workloads::{Cholesky, Fmm, Lu, Radix, Workload};

fn progress_window_ablation() {
    let mut rows = Vec::new();
    for window in [1u32, 8, 64, 1024] {
        let w: Arc<dyn Workload> = Arc::new(Radix { n: 1024, digit_bits: 4, seed: 23 });
        let cfg = SimConfig::builder().tiles(8).progress_window(window).build().expect("config");
        let r = run_workload(cfg, 8, w, |b| b);
        rows.push(vec![
            window.to_string(),
            r.simulated_cycles.0.to_string(),
            f2(r.mem.mean_latency()),
        ]);
    }
    print_table(
        "Ablation: global-progress window size (radix, 8 tiles)",
        &["window", "sim cycles", "mean mem latency (cy)"],
        &rows,
    );
}

fn p2p_slack_ablation() {
    // Cholesky's triangular iteration space leaves threads imbalanced
    // between barriers, giving LaxP2P real skew to police.
    let runs = 3;
    let run_with = |sync: SyncModel, seed: u64| {
        let w: Arc<dyn Workload> = Arc::new(Cholesky { n: 40, seed: 5 });
        let cfg = SimConfig::builder().tiles(8).sync(sync).seed(seed).build().expect("config");
        run_workload(cfg, 8, w, |b| b)
    };
    let mut baseline = RunStats::new();
    for s in 0..runs {
        baseline
            .push(run_with(SyncModel::LaxBarrier { quantum: 1_000 }, s).simulated_cycles.0 as f64);
    }
    let mut rows = Vec::new();
    for slack in [1_000u64, 10_000, 100_000] {
        let mut cycles = RunStats::new();
        let mut sleeps = 0u64;
        for s in 0..runs {
            let r = run_with(SyncModel::LaxP2P { slack, check_interval: 500 }, 100 + s);
            cycles.push(r.simulated_cycles.0 as f64);
            sleeps += r.sync.p2p_sleeps;
        }
        rows.push(vec![
            slack.to_string(),
            f2(cycles.error_percent(baseline.mean())),
            f2(cycles.cov_percent()),
            (sleeps / { runs }).to_string(),
        ]);
    }
    print_table(
        "Ablation: LaxP2P slack (cholesky, 8 tiles; error vs LaxBarrier)",
        &["slack (cy)", "error %", "CoV %", "sleeps/run"],
        &rows,
    );
}

fn tile_mapping_ablation() {
    // Directory homes are striped by line address, so the remote-home
    // fraction is pinned at (P-1)/P under any mapping — what the mapping
    // *does* move is message locality: fmm's tile-to-neighbour ring crosses
    // processes on every hop when tiles are striped, almost never when
    // packed.
    let mut rows = Vec::new();
    for (label, mapping) in [("striped", TileMapping::Striped), ("packed", TileMapping::Packed)] {
        let w: Arc<dyn Workload> = Arc::new(Fmm::small());
        let cfg = SimConfig::builder()
            .tiles(8)
            .processes(4)
            .tile_mapping(mapping)
            .build()
            .expect("config");
        let r = run_workload(cfg, 8, w, |b| b);
        let total_txn: u64 = r.per_tile.iter().map(|t| t.mem_transactions).sum();
        let remote_txn: u64 = r.per_tile.iter().map(|t| t.remote_home_transactions).sum();
        rows.push(vec![
            label.to_string(),
            f2(100.0 * remote_txn as f64 / total_txn.max(1) as f64),
            r.transport.intra_process.to_string(),
            (r.transport.inter_process + r.transport.inter_machine).to_string(),
        ]);
    }
    print_table(
        "Ablation: tile-to-process mapping (fmm, 8 tiles / 4 processes)",
        &["mapping", "remote-home %", "intra-proc msgs", "cross-proc msgs"],
        &rows,
    );
}

fn core_model_ablation() {
    // Paper §3.1: the core model is swappable without touching the
    // functional simulator; the whole system reflects the new core type.
    let mut rows = Vec::new();
    let kinds = [
        ("in-order", CoreKind::InOrder(CoreParams::default())),
        ("out-of-order", CoreKind::OutOfOrder(OooParams::default())),
    ];
    for (label, kind) in kinds {
        let w: Arc<dyn Workload> = Arc::new(Lu { n: 32, contiguous: true, seed: 3 });
        let cfg = SimConfig::builder().tiles(8).build().expect("config");
        let k = kind.clone();
        let r = run_workload(cfg, 8, w, move |b| b.core_model(k));
        rows.push(vec![
            label.to_string(),
            r.simulated_cycles.0.to_string(),
            f2(r.total_instructions as f64 / r.simulated_cycles.0.max(1) as f64 * 8.0),
        ]);
    }
    print_table(
        "Ablation: core performance model (lu_cont, 8 tiles)",
        &["core model", "sim cycles", "aggregate IPC"],
        &rows,
    );
}

fn protocol_ablation() {
    // MSI (the paper's protocol) vs MESI. The Exclusive state pays off on
    // read-modify-write of data nobody else holds — here, each thread
    // increments every element of a private array whose contents arrived
    // functionally (as mmap'd input would): under MSI the first store to
    // each freshly-read line is an upgrade transaction; under MESI the read
    // took the line Exclusive and the store upgrades silently.
    let mut rows = Vec::new();
    for (label, proto) in [("MSI", CacheProtocol::Msi), ("MESI", CacheProtocol::Mesi)] {
        let cfg = SimConfig::builder().tiles(8).protocol(proto).build().expect("config");
        let sim = graphite::Sim::builder(cfg).build().expect("simulator");
        let r = sim.run(|ctx| {
            const PER: u64 = 512; // u64 elements per thread (64 lines)
            let base = ctx.malloc(8 * PER * 8).expect("heap");
            for i in 0..8 * PER {
                ctx.poke_bytes(base.offset(i * 8), &i.to_le_bytes());
            }
            graphite_workloads::fork_join(ctx, 8, move |ctx, id| {
                let lo = id as u64 * PER;
                for i in lo..lo + PER {
                    let v = ctx.load::<u64>(base.offset(i * 8));
                    ctx.store::<u64>(base.offset(i * 8), v + 1);
                }
            });
            for i in 0..8 * PER {
                let mut b = [0u8; 8];
                ctx.peek_bytes(base.offset(i * 8), &mut b);
                assert_eq!(u64::from_le_bytes(b), i + 1);
            }
        });
        rows.push(vec![
            label.to_string(),
            r.simulated_cycles.0.to_string(),
            r.mem.misses.to_string(),
            r.mem.upgrades.to_string(),
            f2(r.mem.mean_latency()),
        ]);
    }
    print_table(
        "Ablation: cache protocol (private read-modify-write sweep, 8 tiles)",
        &["protocol", "sim cycles", "misses", "upgrade txns", "mean mem latency (cy)"],
        &rows,
    );
}

fn topology_ablation() {
    // "Any network topology can be modeled": mesh vs ring on the
    // communication-heavy fft.
    let mut rows = Vec::new();
    for (label, net) in [("mesh", NetworkKind::Mesh), ("ring", NetworkKind::Ring)] {
        let w: Arc<dyn Workload> = Arc::new(graphite_workloads::Fft { n: 256, seed: 17 });
        let cfg = SimConfig::builder().tiles(16).network(net).build().expect("config");
        let r = run_workload(cfg, 16, w, |b| b);
        rows.push(vec![
            label.to_string(),
            r.simulated_cycles.0.to_string(),
            f2(r.net_memory.hops as f64 / r.net_memory.packets.max(1) as f64),
            f2(r.net_memory.mean_latency),
        ]);
    }
    print_table(
        "Ablation: network topology (fft, 16 tiles)",
        &["topology", "sim cycles", "mean hops", "mean latency (cy)"],
        &rows,
    );
}

fn barrier_quantum_ablation() {
    // Paper §4.3: "the parameters to synchronization models can be tuned to
    // match application behavior... some applications can tolerate large
    // barrier intervals with no measurable degradation in accuracy."
    let w = |_q| -> Arc<dyn Workload> { Arc::new(Cholesky { n: 40, seed: 5 }) };
    let tight = {
        let cfg = SimConfig::builder()
            .tiles(8)
            .sync(SyncModel::LaxBarrier { quantum: 500 })
            .build()
            .expect("config");
        run_workload(cfg, 8, w(500), |b| b)
    };
    let mut rows = Vec::new();
    for quantum in [500u64, 2_000, 10_000, 50_000] {
        let cfg = SimConfig::builder()
            .tiles(8)
            .sync(SyncModel::LaxBarrier { quantum })
            .build()
            .expect("config");
        let start = std::time::Instant::now();
        let r = run_workload(cfg, 8, w(quantum), |b| b);
        let err = 100.0 * (r.simulated_cycles.0 as f64 - tight.simulated_cycles.0 as f64).abs()
            / tight.simulated_cycles.0 as f64;
        rows.push(vec![
            quantum.to_string(),
            f2(err),
            r.sync.barrier_releases.to_string(),
            f2(start.elapsed().as_secs_f64()),
        ]);
    }
    print_table(
        "Ablation: barrier quantum (cholesky, 8 tiles; error vs 500-cycle quantum)",
        &["quantum (cy)", "error %", "releases", "wall (s)"],
        &rows,
    );
}

fn main() {
    progress_window_ablation();
    p2p_slack_ablation();
    tile_mapping_ablation();
    core_model_ablation();
    protocol_ablation();
    topology_ablation();
    barrier_quantum_ablation();
}
