//! Regenerates **Figure 6** and **Table 3**: performance, simulated-time
//! error, and run-to-run coefficient of variation for the three
//! synchronization models (Lax, LaxP2P, LaxBarrier) on one and four host
//! machines.
//!
//! Error and CoV come from real repeated runs (nondeterministic thread
//! interleaving is genuine); run-time is the host model's projection (plus
//! this host's measured wall time for reference). Paper parameters: barrier
//! quantum 1,000 cycles; LaxP2P slack 100,000 cycles; baseline = LaxBarrier.

use std::sync::Arc;

use graphite::SimConfig;
use graphite_base::RunStats;
use graphite_bench::{f2, f3, print_table, run_workload};
use graphite_config::SyncModel;
use graphite_hostmodel::{project, ClusterSpec, HostCostParams, HostEvents};
use graphite_workloads::{Lu, Ocean, Radix, Workload};

const RUNS: usize = 5;
const TILES: u32 = 8;
const THREADS: u32 = 8;

fn sync_models() -> [(&'static str, SyncModel); 3] {
    // The paper used a 100,000-cycle slack on full-size SPLASH runs
    // (hundreds of millions of cycles); our inputs are scaled down by ~10³,
    // so the slack scales with them — otherwise P2P never engages and
    // degenerates to plain Lax.
    [
        ("Lax", SyncModel::Lax),
        ("LaxP2P", SyncModel::LaxP2P { slack: 5_000, check_interval: 500 }),
        ("LaxBarrier", SyncModel::LaxBarrier { quantum: 1_000 }),
    ]
}

struct Cell {
    cycles: RunStats,
    wall: RunStats,
    modeled: f64,
}

fn main() {
    let workloads: Vec<Arc<dyn Workload>> = vec![
        Arc::new(Lu { n: 32, contiguous: true, seed: 3 }),
        Arc::new(Ocean { n: 26, iters: 3, contiguous: true, seed: 29 }),
        Arc::new(Radix { n: 1024, digit_bits: 4, seed: 23 }),
    ];
    let costs = HostCostParams::default();
    let machine_counts = [1u32, 4];

    let mut perf_rows = Vec::new();
    let mut acc_rows = Vec::new();

    for w in &workloads {
        // cells[(model, machines)] -> statistics over RUNS runs.
        let mut cells: Vec<Vec<Cell>> = Vec::new();
        for (_, model) in sync_models() {
            let mut row = Vec::new();
            for &mc in &machine_counts {
                let mut cycles = RunStats::new();
                let mut wall = RunStats::new();
                let mut modeled_sum = 0.0;
                for run in 0..RUNS {
                    let cfg = SimConfig::builder()
                        .tiles(TILES)
                        .processes(mc.min(TILES))
                        .machines(mc)
                        .sync(model)
                        .seed(0xBEEF + run as u64)
                        .build()
                        .expect("bench config");
                    let start = std::time::Instant::now();
                    let r = run_workload(cfg, THREADS, Arc::clone(w), |b| b);
                    wall.push(start.elapsed().as_secs_f64());
                    cycles.push(r.simulated_cycles.0 as f64);
                    let ev = HostEvents::from_report(&r);
                    modeled_sum += project(&ev, &ClusterSpec::paper(mc), &costs).wall_seconds;
                }
                row.push(Cell { cycles, wall, modeled: modeled_sum / RUNS as f64 });
            }
            cells.push(row);
        }

        // Normalize modeled run-time to Lax on 1 machine (Figure 6a).
        let lax_1mc = cells[0][0].modeled;
        for (mi, (name, _)) in sync_models().iter().enumerate() {
            for (ci, &mc) in machine_counts.iter().enumerate() {
                let c = &cells[mi][ci];
                perf_rows.push(vec![
                    w.name().to_string(),
                    name.to_string(),
                    format!("{mc}mc"),
                    f3(c.modeled / lax_1mc),
                    f3(c.wall.mean()),
                ]);
            }
        }
        // Error vs the LaxBarrier (1mc) baseline; CoV per cell (Fig 6b/6c).
        let baseline = cells[2][0].cycles.mean();
        for (mi, (name, _)) in sync_models().iter().enumerate() {
            for (ci, &mc) in machine_counts.iter().enumerate() {
                let c = &cells[mi][ci];
                acc_rows.push(vec![
                    w.name().to_string(),
                    name.to_string(),
                    format!("{mc}mc"),
                    format!("{:.0}", c.cycles.mean()),
                    f2(c.cycles.error_percent(baseline)),
                    f2(c.cycles.cov_percent()),
                ]);
            }
        }
    }

    print_table(
        "Figure 6a / Table 3: run-time normalized to Lax@1mc (modeled cluster; wall = this host)",
        &["benchmark", "model", "hosts", "norm run-time", "this-host wall (s)"],
        &perf_rows,
    );
    print_table(
        &format!(
            "Figure 6b/6c / Table 3: simulated-time error vs LaxBarrier@1mc and CoV ({RUNS} runs)"
        ),
        &["benchmark", "model", "hosts", "mean cycles", "error %", "CoV %"],
        &acc_rows,
    );

    // Aggregate summary in the Table 3 shape.
    let mut summary = Vec::new();
    for (mi, (name, _)) in sync_models().iter().enumerate() {
        let mut err = RunStats::new();
        let mut cov = RunStats::new();
        for row in acc_rows.iter().filter(|r| r[1] == *name) {
            err.push(row[4].parse::<f64>().expect("formatted above"));
            cov.push(row[5].parse::<f64>().expect("formatted above"));
        }
        let _ = mi;
        summary.push(vec![name.to_string(), f2(err.mean()), f2(cov.mean())]);
    }
    print_table(
        "Table 3 summary: mean error and CoV by model",
        &["model", "error %", "CoV %"],
        &summary,
    );
}
