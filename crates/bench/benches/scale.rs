//! Thousand-tile scale study (paper §3.7, Figure 4 style): the M:N guest
//! scheduler against thread-per-tile execution at 64 / 256 / 1024 tiles.
//!
//! Both modes run the same deterministic workloads; the *scheduled* mode
//! uses the default (auto) worker pool — `min(host cores, tiles)` execution
//! slots multiplexing tile contexts with lazily-created carrier threads —
//! and the *baseline* pins `workers = tiles`, which is exact thread-per-tile
//! execution: every context gets a host thread at spawn and holds a slot for
//! its whole life.
//!
//! Two studies per size:
//!
//! * **barrier** — a gated spawn/compute/join burst under `LaxBarrier`
//!   (every quantum boundary is a full rendezvous, the worst case for the
//!   pool): proves multiplexing is invisible in simulated time —
//!   `sim_cycles` must match thread-per-tile bit-for-bit.
//! * **lax run-to-completion** — ungated children that compute and exit
//!   under `Lax`: proves the resource claim. Spawned-but-unscheduled
//!   contexts are run-queue entries with **no host thread**, so the
//!   scheduled mode's peak thread count is bounded by the pool width plus
//!   blocked contexts (a handful), while thread-per-tile needs one host
//!   thread per tile — the thing that stops scaling at thousands of tiles.
//!
//! Results go to `BENCH_scale.json` at the repo root (override with
//! `GRAPHITE_SCALE_OUT`). `GRAPHITE_SCALE_TILES` (comma list) and
//! `GRAPHITE_SCALE_ROUNDS` shrink the study for CI smoke runs;
//! `GRAPHITE_SCALE_SKIP_BASELINE=1` runs only the scheduled mode.
//! `GRAPHITE_SCALE_CASES` (comma-separated `study_tiles` name prefixes, e.g.
//! `barrier_64,lax_rtc`) restricts which cases run, and
//! `GRAPHITE_SCALE_BUDGET_S` makes the binary exit non-zero when total wall
//! time exceeds the budget — same contract as the hotpath bench, so CI can
//! catch a scheduler perf regression as a red job instead of a slow one.

use std::sync::Arc;
use std::time::Instant;

use graphite::{GuestEntry, Sim, SimConfig, SimReport, SyncModel};
use graphite_base::TileId;

/// Per-child compute rounds; under LaxBarrier each `alu` burst crosses
/// several 1000-cycle quanta, so that study is rendezvous-dominated.
const DEFAULT_ROUNDS: u32 = 25;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn build(tiles: u32, sync: SyncModel, workers: Option<u32>) -> Sim {
    let cfg = SimConfig::builder().tiles(tiles).sync(sync).build().expect("scale config");
    let mut b = Sim::builder(cfg);
    if let Some(w) = workers {
        b = b.workers(w);
    }
    b.build().expect("simulator")
}

/// Gated spawn/compute/join burst (the shape the scheduler integration tests
/// prove deterministic): children hold their tile until every spawn has been
/// placed, then compute disjoint ALU bursts — simulated time is a pure
/// function of the program, independent of the worker pool.
fn barrier_run(tiles: u32, workers: Option<u32>, rounds: u32) -> (f64, SimReport) {
    let sim = build(tiles, SyncModel::LaxBarrier { quantum: 1_000 }, workers);
    let t0 = Instant::now();
    let report = sim.run(move |ctx| {
        let entry: GuestEntry = Arc::new(move |ctx, arg| {
            let _ = ctx.recv_msg().unwrap(); // go gate: keeps tile assignment fixed
            for _ in 0..rounds {
                ctx.alu(2_000 + (arg % 13) as u32 * 31);
            }
            ctx.set_exit_value(arg);
        });
        let handles: Vec<_> =
            (1..tiles as u64).map(|i| ctx.spawn(Arc::clone(&entry), i).unwrap()).collect();
        for i in 1..tiles {
            ctx.send_msg(TileId(i), b"go").unwrap();
        }
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join(ctx).unwrap(), i as u64 + 1);
        }
    });
    (t0.elapsed().as_secs_f64(), report)
}

/// Ungated run-to-completion burst under `Lax`: children never block, so a
/// narrow pool runs them straight through a few carrier threads at a time.
/// Simulated time stays pool-independent (each child's exit time depends
/// only on its spawn time and its own compute; joins are in handle order).
fn lax_rtc_run(tiles: u32, workers: Option<u32>, rounds: u32) -> (f64, SimReport) {
    let sim = build(tiles, SyncModel::Lax, workers);
    let t0 = Instant::now();
    let report = sim.run(move |ctx| {
        let entry: GuestEntry = Arc::new(move |ctx, arg| {
            for _ in 0..rounds {
                ctx.alu(2_000 + (arg % 13) as u32 * 31);
            }
            ctx.set_exit_value(arg);
        });
        let handles: Vec<_> =
            (1..tiles as u64).map(|i| ctx.spawn(Arc::clone(&entry), i).unwrap()).collect();
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join(ctx).unwrap(), i as u64 + 1);
        }
    });
    (t0.elapsed().as_secs_f64(), report)
}

struct Mode {
    wall: f64,
    report: SimReport,
}

impl Mode {
    fn to_json(&self, workers: usize) -> String {
        let s = &self.report.sched;
        format!(
            concat!(
                "{{\"workers\": {}, \"wall_s\": {:.4}, \"sim_cycles\": {}, ",
                "\"threads_peak\": {}, \"threads_spawned\": {}, ",
                "\"parks\": {}, \"steals\": {}, \"yields\": {}}}"
            ),
            workers,
            self.wall,
            self.report.simulated_cycles.0,
            s.threads_peak,
            s.threads_spawned,
            s.parks,
            s.steals,
            s.yields,
        )
    }
}

fn main() {
    let sizes: Vec<u32> = std::env::var("GRAPHITE_SCALE_TILES")
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .unwrap_or_else(|_| vec![64, 256, 1024]);
    let rounds = env_u64("GRAPHITE_SCALE_ROUNDS", DEFAULT_ROUNDS as u64) as u32;
    let skip_baseline = std::env::var("GRAPHITE_SCALE_SKIP_BASELINE").is_ok();
    let out_path = std::env::var("GRAPHITE_SCALE_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_scale.json", env!("CARGO_MANIFEST_DIR")));
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // `GRAPHITE_SCALE_CASES=barrier_64,lax_rtc` runs only cases whose
    // `study_tiles` name starts with one of the prefixes.
    let case_filter: Vec<String> = std::env::var("GRAPHITE_SCALE_CASES")
        .map(|v| v.split(',').map(|s| s.trim().to_owned()).filter(|s| !s.is_empty()).collect())
        .unwrap_or_default();
    let bench_t0 = Instant::now();

    println!("scale study: tiles {sizes:?}, {rounds} compute rounds, host threads {host}");
    type StudyFn = fn(u32, Option<u32>, u32) -> (f64, SimReport);
    let studies: [(&str, StudyFn); 2] = [("barrier", barrier_run), ("lax_rtc", lax_rtc_run)];

    let mut cases = Vec::new();
    for &(study, run) in &studies {
        for &tiles in &sizes {
            let name = format!("{study}_{tiles}");
            if !case_filter.is_empty() && !case_filter.iter().any(|p| name.starts_with(p.as_str()))
            {
                println!("  {name}: skipped by GRAPHITE_SCALE_CASES");
                continue;
            }
            let pool = host.min(tiles as usize);
            let (wall, report) = run(tiles, None, rounds);
            let sched = Mode { wall, report };
            println!(
                "  {study:<8} {tiles:>5}t scheduled({pool:>2}w): {:>8.3}s, {} sim cycles, \
                 peak {} threads",
                sched.wall, sched.report.simulated_cycles.0, sched.report.sched.threads_peak
            );
            let base = if skip_baseline {
                None
            } else {
                let (wall, report) = run(tiles, Some(tiles), rounds);
                let matched = report.simulated_cycles == sched.report.simulated_cycles;
                println!(
                    "  {study:<8} {tiles:>5}t thread-per-tile: {:>8.3}s, {} sim cycles ({}), \
                     peak {} threads",
                    wall,
                    report.simulated_cycles.0,
                    if matched { "identical" } else { "DIVERGED" },
                    report.sched.threads_peak
                );
                assert!(matched, "{study} {tiles}t: multiplexing changed simulated time");
                Some(Mode { wall, report })
            };
            cases.push((study, tiles, pool, sched, base));
        }
    }

    let body: Vec<String> = cases
        .iter()
        .map(|(study, tiles, pool, sched, base)| {
            let base_json = match base {
                Some(b) => b.to_json(*tiles as usize),
                None => "null".into(),
            };
            let matched = base
                .as_ref()
                .map(|b| (b.report.simulated_cycles == sched.report.simulated_cycles).to_string())
                .unwrap_or_else(|| "null".into());
            format!(
                concat!(
                    "    {{\"study\": \"{}\", \"tiles\": {}, \"sim_cycles_match\": {}, ",
                    "\"scheduled\": {}, \"thread_per_tile\": {}}}"
                ),
                study,
                tiles,
                matched,
                sched.to_json(*pool),
                base_json
            )
        })
        .collect();
    let doc = format!(
        concat!(
            "{{\n  \"schema\": \"graphite.bench.scale.v1\",\n",
            "  \"host_threads\": {},\n  \"compute_rounds\": {},\n  \"cases\": [\n{}\n  ]\n}}\n"
        ),
        host,
        rounds,
        body.join(",\n")
    );
    std::fs::write(&out_path, &doc).expect("write BENCH_scale.json");
    println!("wrote {out_path}");

    // Fail the run (and the CI job driving it) when the study blew its
    // wall-clock budget — a scheduler perf regression becomes a red job.
    if let Ok(budget) = std::env::var("GRAPHITE_SCALE_BUDGET_S") {
        if let Ok(budget_s) = budget.parse::<f64>() {
            let total = bench_t0.elapsed().as_secs_f64();
            if total > budget_s {
                eprintln!("scale bench exceeded budget: {total:.1}s > {budget_s:.1}s");
                std::process::exit(1);
            }
            println!("within budget: {total:.1}s <= {budget_s:.1}s");
        }
    }
}
