//! Regenerates **Figure 5**: run-time of a 1024-thread `matrix-multiply`
//! on a 1024-tile target across 1..10 host machines.
//!
//! The paper ran 320×320 matrices (102,400 elements); we scale the matrix
//! down (EXPERIMENTS.md records the size) but keep the full 1024 application
//! threads on 1024 target tiles, with the kernel's barrier phases and
//! neighbour ring messages. One real simulation measures the events; the
//! host model projects wall-clock per machine count, including the
//! sequential per-process initialization that bounds scaling.

use std::sync::Arc;

use graphite::SimConfig;
use graphite_bench::{f2, print_table, run_workload};
use graphite_hostmodel::{project, ClusterSpec, HostCostParams, HostEvents};
use graphite_workloads::{MatMul, Workload};

fn main() {
    const TILES: u32 = 1024;
    const THREADS: u32 = 1024;
    let w: Arc<dyn Workload> = Arc::new(MatMul::fig5(96));
    let cfg =
        SimConfig::builder().tiles(TILES).processes(10).machines(10).build().expect("bench config");
    println!("running 1024-thread matrix-multiply on a 1024-tile target ...");
    let start = std::time::Instant::now();
    let report = run_workload(cfg, THREADS, w, |b| b);
    println!(
        "simulation done in {:.1}s wall; {} simulated cycles, {} threads spawned",
        start.elapsed().as_secs_f64(),
        report.simulated_cycles.0,
        report.ctrl.spawns
    );
    // Extrapolate the measured event mix from our 96×96 run to the paper's
    // 320×320 (102,400-element) kernel: compute (and the accesses feeding
    // it) grows as n³, the coherence footprint as n² (same method as the
    // fig4 bench; see DESIGN.md).
    let k_compute = (320.0f64 / 96.0).powi(3);
    let k_footprint = (320.0f64 / 96.0).powi(2);
    let raw = HostEvents::from_report(&report);
    // Tile 0 (the main thread) also runs the O(n²) serial input-generation
    // and verification phases; those scale with the footprint, not the
    // compute. Split its counts into a parallel share (≈ a typical worker's)
    // and a serial remainder, and scale each accordingly.
    let split_scale = |v: &[u64]| -> Vec<u64> {
        let mut sorted: Vec<u64> = v[1..].to_vec();
        sorted.sort_unstable();
        let worker_median = sorted[sorted.len() / 2] as f64;
        v.iter()
            .enumerate()
            .map(|(i, &x)| {
                if i == 0 {
                    let parallel = (x as f64).min(worker_median);
                    let serial = x as f64 - parallel;
                    (parallel * k_compute + serial * k_footprint) as u64
                } else {
                    (x as f64 * k_compute) as u64
                }
            })
            .collect()
    };
    let events = HostEvents {
        instructions: split_scale(&raw.instructions),
        accesses: split_scale(&raw.accesses),
        transactions: raw.transactions.iter().map(|&x| (x as f64 * k_footprint) as u64).collect(),
        control_ops: raw.control_ops,
        user_msgs: raw.user_msgs,
        barrier_releases: raw.barrier_releases,
        p2p_checks: raw.p2p_checks,
        p2p_sleeps: raw.p2p_sleeps,
        simulated_cycles: (raw.simulated_cycles as f64 * k_compute) as u64,
    };
    let costs = HostCostParams::default();

    let base = project(&events, &ClusterSpec::paper(1), &costs).wall_seconds;
    let mut rows = Vec::new();
    for machines in 1..=10u32 {
        let p = project(&events, &ClusterSpec::paper(machines), &costs);
        rows.push(vec![
            machines.to_string(),
            f2(p.wall_seconds),
            f2(base / p.wall_seconds),
            f2(p.init_seconds),
            f2(p.comm_seconds),
        ]);
    }
    print_table(
        "Figure 5: 1024-tile matrix-multiply vs host machines (modeled cluster)",
        &["machines", "wall (s)", "speedup", "init (s)", "comm (s)"],
        &rows,
    );
    let ten = project(&events, &ClusterSpec::paper(10), &costs);
    println!("\nspeedup at 10 machines: {:.2}x (paper: 3.85x)", base / ten.wall_seconds);
}
