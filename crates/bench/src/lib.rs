//! Shared infrastructure for the experiment harness.
//!
//! Each `benches/figN_*.rs` target regenerates one table or figure of the
//! paper's evaluation (see `DESIGN.md` for the index and `EXPERIMENTS.md`
//! for recorded results). This library holds the pieces they share: a
//! simulation runner and fixed-width table printing.

use std::sync::Arc;

use graphite::{SimConfig, SimReport, Simulator, SimulatorBuilder};
use graphite_workloads::Workload;

/// Runs `workload` with `threads` application threads on a simulator built
/// from `cfg` (after applying `tweak` to the builder), returning the report.
pub fn run_workload(
    cfg: SimConfig,
    threads: u32,
    workload: Arc<dyn Workload>,
    tweak: impl FnOnce(SimulatorBuilder) -> SimulatorBuilder,
) -> SimReport {
    let sim = tweak(Simulator::builder(cfg)).build().expect("valid bench config");
    sim.run(move |ctx| workload.run(ctx, threads))
}

/// Prints a fixed-width table with a title, header row and data rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Median of a slice (not required to be sorted).
pub fn median(xs: &[f64]) -> f64 {
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    if v.is_empty() {
        return f64::NAN;
    }
    let mid = v.len() / 2;
    if v.len() % 2 == 0 {
        (v[mid - 1] + v[mid]) / 2.0
    } else {
        v[mid]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphite_workloads::workload_by_name;

    #[test]
    fn runner_executes_a_workload() {
        let cfg = SimConfig::builder().tiles(2).build().unwrap();
        let r = run_workload(cfg, 2, workload_by_name("radix").unwrap(), |b| b);
        assert!(r.mem.accesses() > 0);
    }

    #[test]
    fn median_handles_odd_even_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn table_printer_does_not_panic() {
        print_table(
            "demo",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f3(1.2344), "1.234");
    }
}
