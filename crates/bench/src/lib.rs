//! Shared infrastructure for the experiment harness.
//!
//! Each `benches/figN_*.rs` target regenerates one table or figure of the
//! paper's evaluation (see `DESIGN.md` for the index and `EXPERIMENTS.md`
//! for recorded results). This library holds the pieces they share: a
//! simulation runner, observability export, and fixed-width table printing.
//!
//! ## Observability export
//!
//! Every harness that goes through [`run_workload`] (or calls
//! [`apply_obs_env`] + [`export_observability`] itself) honours two
//! environment variables:
//!
//! * `GRAPHITE_OBS_DIR=<dir>` — after each simulation, write
//!   `<dir>/<NNN>_<label>.metrics.json` (the full metrics registry,
//!   schema `graphite.metrics.v1`) and, when tracing or skew sampling
//!   captured anything, `<dir>/<NNN>_<label>.trace.jsonl` (one structured
//!   event per line) plus `<dir>/<NNN>_<label>.perfetto.json` (a Chrome
//!   `trace_event` timeline for <https://ui.perfetto.dev>).
//! * `GRAPHITE_TRACE=1` — switch on per-tile event tracing for the run
//!   (`GRAPHITE_TRACE_CAPACITY=<n>` overrides the per-tile ring size).
//!
//! ## Checkpointing
//!
//! * `GRAPHITE_CKPT_DIR=<dir>` — after each workload completes (a natural
//!   quiesce point: workloads join their threads), write
//!   `<dir>/<NNN>_<label>.ckpt` in the `graphite.ckpt.v4` format, resumable
//!   with `Sim::builder(cfg).resume(path)`.
//! * `GRAPHITE_CKPT_EVERY=<n>` — for harnesses that call
//!   [`maybe_checkpoint`] at their own quiesce points, keep only every
//!   `n`-th request (default: every request).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use graphite::{Ctx, Sim, SimBuilder, SimConfig, SimReport};
use graphite_workloads::Workload;

/// Applies the `GRAPHITE_TRACE` / `GRAPHITE_TRACE_CAPACITY` environment
/// switches to a builder. A no-op when the variables are unset.
pub fn apply_obs_env(mut b: SimBuilder) -> SimBuilder {
    if std::env::var("GRAPHITE_TRACE").is_ok_and(|v| v == "1") {
        b = b.tracing(true);
    }
    if let Some(cap) =
        std::env::var("GRAPHITE_TRACE_CAPACITY").ok().and_then(|v| v.parse::<usize>().ok())
    {
        b = b.trace_capacity(cap);
    }
    b
}

/// Sequence number so repeated runs of the same workload in one harness get
/// distinct artifact names.
static EXPORT_SEQ: AtomicU32 = AtomicU32::new(0);

/// Writes `label`'s `metrics.json` (plus `trace.jsonl` and a Perfetto
/// `perfetto.json` timeline when events or skew samples were captured)
/// under `$GRAPHITE_OBS_DIR`; a no-op when the variable is unset.
/// Non-alphanumeric label characters are folded to `_`.
pub fn export_observability(label: &str, report: &SimReport) {
    let Ok(dir) = std::env::var("GRAPHITE_OBS_DIR") else { return };
    if dir.is_empty() {
        return;
    }
    let _ = std::fs::create_dir_all(&dir);
    let clean: String =
        label.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();
    let seq = EXPORT_SEQ.fetch_add(1, Ordering::Relaxed);
    let stem = format!("{seq:03}_{clean}");
    let metrics_path = format!("{dir}/{stem}.metrics.json");
    if let Err(e) = std::fs::write(&metrics_path, report.metrics_json()) {
        eprintln!("warning: could not write {metrics_path}: {e}");
    }
    if !report.trace_events.is_empty() {
        let trace_path = format!("{dir}/{stem}.trace.jsonl");
        if let Err(e) = std::fs::write(&trace_path, report.trace_jsonl()) {
            eprintln!("warning: could not write {trace_path}: {e}");
        }
    }
    if !report.trace_events.is_empty() || !report.skew_samples.is_empty() {
        let perfetto_path = format!("{dir}/{stem}.perfetto.json");
        if let Err(e) = std::fs::write(&perfetto_path, report.perfetto_json()) {
            eprintln!("warning: could not write {perfetto_path}: {e}");
        }
    }
}

/// Sequence number for auto-checkpoint artifacts (separate from
/// [`EXPORT_SEQ`] so metrics and checkpoint numbering stay independent).
static CKPT_SEQ: AtomicU32 = AtomicU32::new(0);

/// Requests a checkpoint at a quiesce point, honouring the environment:
/// a no-op unless `GRAPHITE_CKPT_DIR` is set, and `GRAPHITE_CKPT_EVERY=<n>`
/// keeps only every `n`-th numbered request (`step`). Returns the written
/// path. A refused checkpoint (not quiesced) warns instead of failing the
/// harness.
pub fn maybe_checkpoint(ctx: &Ctx, label: &str, step: u64) -> Option<PathBuf> {
    let dir = std::env::var("GRAPHITE_CKPT_DIR").ok().filter(|d| !d.is_empty())?;
    let every = std::env::var("GRAPHITE_CKPT_EVERY")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1);
    if !step.is_multiple_of(every) {
        return None;
    }
    let _ = std::fs::create_dir_all(&dir);
    let clean: String =
        label.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();
    let seq = CKPT_SEQ.fetch_add(1, Ordering::Relaxed);
    let path = PathBuf::from(dir).join(format!("{seq:03}_{clean}.ckpt"));
    match ctx.checkpoint(&path) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: checkpoint {} skipped: {e}", path.display());
            None
        }
    }
}

/// Runs `workload` with `threads` application threads on a simulator built
/// from `cfg` (after applying `tweak` to the builder), returning the report.
/// Honours the observability and checkpoint environment switches (see the
/// module docs).
pub fn run_workload(
    cfg: SimConfig,
    threads: u32,
    workload: Arc<dyn Workload>,
    tweak: impl FnOnce(SimBuilder) -> SimBuilder,
) -> SimReport {
    let name = workload.name();
    let sim = tweak(apply_obs_env(Sim::builder(cfg))).build().expect("valid bench config");
    let label = name.to_owned();
    let report = sim.run(move |ctx| {
        workload.run(ctx, threads);
        // The workload has joined its threads: a natural quiesce point.
        maybe_checkpoint(ctx, &label, 0);
    });
    export_observability(name, &report);
    report
}

/// Prints a fixed-width table with a title, header row and data rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Median of a slice (not required to be sorted).
pub fn median(xs: &[f64]) -> f64 {
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    if v.is_empty() {
        return f64::NAN;
    }
    let mid = v.len() / 2;
    if v.len().is_multiple_of(2) {
        (v[mid - 1] + v[mid]) / 2.0
    } else {
        v[mid]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphite_workloads::workload_by_name;

    #[test]
    fn runner_executes_a_workload() {
        let cfg = SimConfig::builder().tiles(2).build().unwrap();
        let r = run_workload(cfg, 2, workload_by_name("radix").unwrap(), |b| b);
        assert!(r.mem.accesses() > 0);
    }

    #[test]
    fn observability_export_writes_parseable_artifacts() {
        let dir = std::env::temp_dir().join(format!("graphite-obs-{}", std::process::id()));
        std::env::set_var("GRAPHITE_OBS_DIR", &dir);
        std::env::set_var("GRAPHITE_TRACE", "1");
        let cfg = SimConfig::builder().tiles(2).build().unwrap();
        let r = run_workload(cfg, 2, workload_by_name("radix").unwrap(), |b| b);
        std::env::remove_var("GRAPHITE_OBS_DIR");
        std::env::remove_var("GRAPHITE_TRACE");
        assert!(!r.trace_events.is_empty(), "GRAPHITE_TRACE=1 must capture events");
        let mut metrics = 0;
        let mut traces = 0;
        for entry in std::fs::read_dir(&dir).expect("obs dir created") {
            let path = entry.unwrap().path();
            let body = std::fs::read_to_string(&path).unwrap();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            if name.ends_with(".metrics.json") {
                graphite_trace::json::validate(&body).unwrap_or_else(|e| panic!("{name}: {e}"));
                assert!(body.contains("graphite.metrics.v1"));
                metrics += 1;
            } else if name.ends_with(".trace.jsonl") {
                for line in body.lines() {
                    graphite_trace::json::validate(line).unwrap_or_else(|e| panic!("{name}: {e}"));
                }
                traces += 1;
            }
        }
        std::fs::remove_dir_all(&dir).ok();
        assert!(metrics >= 1, "metrics.json written");
        assert!(traces >= 1, "trace.jsonl written");
    }

    #[test]
    fn ckpt_env_writes_resumable_checkpoint() {
        // Unset, the hook is inert.
        std::env::remove_var("GRAPHITE_CKPT_DIR");
        let quiet = SimConfig::builder().tiles(1).build().unwrap();
        Sim::builder(quiet).build().unwrap().run(|ctx| {
            assert!(maybe_checkpoint(ctx, "noop", 0).is_none());
        });

        let dir = std::env::temp_dir().join(format!("graphite-ckpt-{}", std::process::id()));
        std::env::set_var("GRAPHITE_CKPT_DIR", &dir);
        let cfg = SimConfig::builder().tiles(2).build().unwrap();
        run_workload(cfg, 2, workload_by_name("radix").unwrap(), |b| b);
        std::env::remove_var("GRAPHITE_CKPT_DIR");
        let mut ckpts = 0;
        for entry in std::fs::read_dir(&dir).expect("ckpt dir created") {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "ckpt") {
                let r = graphite_ckpt::CkptReader::open(&path)
                    .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
                for seg in ["meta", "clocks", "mem", "net", "metrics", "ctrl"] {
                    assert!(r.has_segment(seg), "{}: missing segment {seg}", path.display());
                }
                ckpts += 1;
            }
        }
        std::fs::remove_dir_all(&dir).ok();
        assert!(ckpts >= 1, "a .ckpt artifact was written");
    }

    #[test]
    fn median_handles_odd_even_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn table_printer_does_not_panic() {
        print_table(
            "demo",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f3(1.2344), "1.234");
    }
}
