//! 2-D mesh topology and dimension-ordered (XY) routing.
//!
//! The paper's target (Table 1) interconnects tiles with a mesh. Tiles are
//! laid out row-major on a near-square grid; packets route all the way in X
//! first, then in Y — deadlock-free and deterministic, matching the routing
//! used by Raw and the Tile processor the paper cites.

use graphite_base::TileId;

/// A directed link leaving a tile in one of four directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Link {
    /// The tile the link leaves from.
    pub from: TileId,
    /// Direction of travel.
    pub dir: Direction,
}

/// Mesh link direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Toward larger x.
    East,
    /// Toward smaller x.
    West,
    /// Toward larger y.
    South,
    /// Toward smaller y.
    North,
}

impl Direction {
    fn index(self) -> usize {
        match self {
            Direction::East => 0,
            Direction::West => 1,
            Direction::South => 2,
            Direction::North => 3,
        }
    }
}

/// A near-square 2-D mesh arranging `n` tiles row-major.
///
/// # Examples
///
/// ```
/// use graphite_base::TileId;
/// use graphite_network::MeshTopology;
///
/// let mesh = MeshTopology::new(16); // 4x4
/// assert_eq!(mesh.width(), 4);
/// assert_eq!(mesh.coords(TileId(5)), (1, 1));
/// assert_eq!(mesh.hops(TileId(0), TileId(15)), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshTopology {
    width: u32,
    tiles: u32,
}

impl MeshTopology {
    /// Lays out `tiles` tiles on a near-square grid.
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is zero.
    pub fn new(tiles: u32) -> Self {
        assert!(tiles > 0, "mesh needs at least one tile");
        let width = (tiles as f64).sqrt().ceil() as u32;
        MeshTopology { width, tiles }
    }

    /// Grid width (tiles per row).
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of tiles.
    pub fn tiles(&self) -> u32 {
        self.tiles
    }

    /// (x, y) coordinates of a tile.
    pub fn coords(&self, t: TileId) -> (u32, u32) {
        (t.0 % self.width, t.0 / self.width)
    }

    /// Manhattan distance between two tiles — the hop count of XY routing.
    pub fn hops(&self, a: TileId, b: TileId) -> u32 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// The sequence of directed links an XY-routed packet traverses.
    pub fn xy_route(&self, src: TileId, dst: TileId) -> Vec<Link> {
        self.xy_links(src, dst).collect()
    }

    /// Iterates the directed links of the XY route without allocating — for
    /// per-packet accounting on hot paths.
    pub fn xy_links(&self, src: TileId, dst: TileId) -> impl Iterator<Item = Link> + '_ {
        let (mut x, mut y) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        std::iter::from_fn(move || {
            if x != dx {
                let dir = if dx > x { Direction::East } else { Direction::West };
                let link = Link { from: self.tile_at(x, y), dir };
                if dx > x {
                    x += 1;
                } else {
                    x -= 1;
                }
                Some(link)
            } else if y != dy {
                let dir = if dy > y { Direction::South } else { Direction::North };
                let link = Link { from: self.tile_at(x, y), dir };
                if dy > y {
                    y += 1;
                } else {
                    y -= 1;
                }
                Some(link)
            } else {
                None
            }
        })
    }

    /// The switch position a directed link arrives at.
    ///
    /// # Panics
    ///
    /// Overflows (debug) or wraps (release) on a link that leaves the grid;
    /// XY routes never produce one.
    pub fn link_dst(&self, link: Link) -> TileId {
        let (x, y) = self.coords(link.from);
        match link.dir {
            Direction::East => self.tile_at(x + 1, y),
            Direction::West => self.tile_at(x - 1, y),
            Direction::South => self.tile_at(x, y + 1),
            Direction::North => self.tile_at(x, y - 1),
        }
    }

    /// Grid height (rows). The last row may be partially populated with
    /// tiles, but its switches exist and routes may traverse them.
    pub fn height(&self) -> u32 {
        self.tiles.div_ceil(self.width)
    }

    /// Dense index of a directed link, for per-link state arrays.
    pub fn link_index(&self, link: Link) -> usize {
        link.from.index() * 4 + link.dir.index()
    }

    /// Total number of directed link slots: four per *switch position* on
    /// the full `width × height` grid. With a non-square tile count, XY
    /// routes legitimately pass through switch positions beyond the last
    /// tile id, so slots must cover the whole rectangle.
    pub fn num_link_slots(&self) -> usize {
        (self.width * self.height()) as usize * 4
    }

    fn tile_at(&self, x: u32, y: u32) -> TileId {
        TileId(y * self.width + x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn square_layouts() {
        assert_eq!(MeshTopology::new(1).width(), 1);
        assert_eq!(MeshTopology::new(4).width(), 2);
        assert_eq!(MeshTopology::new(16).width(), 4);
        assert_eq!(MeshTopology::new(1024).width(), 32);
        // Non-square counts round the width up.
        assert_eq!(MeshTopology::new(10).width(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one tile")]
    fn zero_tiles_panics() {
        let _ = MeshTopology::new(0);
    }

    #[test]
    fn coords_row_major() {
        let m = MeshTopology::new(16);
        assert_eq!(m.coords(TileId(0)), (0, 0));
        assert_eq!(m.coords(TileId(3)), (3, 0));
        assert_eq!(m.coords(TileId(4)), (0, 1));
        assert_eq!(m.coords(TileId(15)), (3, 3));
    }

    #[test]
    fn hops_to_self_is_zero() {
        let m = MeshTopology::new(64);
        assert_eq!(m.hops(TileId(17), TileId(17)), 0);
        assert!(m.xy_route(TileId(17), TileId(17)).is_empty());
    }

    #[test]
    fn route_goes_x_then_y() {
        let m = MeshTopology::new(16);
        let route = m.xy_route(TileId(0), TileId(10)); // (0,0) -> (2,2)
        assert_eq!(route.len(), 4);
        assert_eq!(route[0].dir, Direction::East);
        assert_eq!(route[1].dir, Direction::East);
        assert_eq!(route[2].dir, Direction::South);
        assert_eq!(route[3].dir, Direction::South);
        // Westward + northward route.
        let back = m.xy_route(TileId(10), TileId(0));
        assert_eq!(back[0].dir, Direction::West);
        assert_eq!(back[3].dir, Direction::North);
    }

    #[test]
    fn link_indices_are_unique_and_dense() {
        let m = MeshTopology::new(9);
        let mut seen = std::collections::HashSet::new();
        for t in 0..9 {
            for dir in [Direction::East, Direction::West, Direction::South, Direction::North] {
                let idx = m.link_index(Link { from: TileId(t), dir });
                assert!(idx < m.num_link_slots());
                assert!(seen.insert(idx), "duplicate link index {idx}");
            }
        }
    }

    #[test]
    fn link_dst_chains_route_to_destination() {
        let m = MeshTopology::new(16);
        let route = m.xy_route(TileId(0), TileId(10));
        for pair in route.windows(2) {
            assert_eq!(m.link_dst(pair[0]), pair[1].from, "links must chain");
        }
        assert_eq!(m.link_dst(*route.last().unwrap()), TileId(10));
    }

    #[test]
    fn non_square_routes_stay_within_link_slots() {
        // 8 tiles on a 3-wide grid: routes may traverse the empty (2,2)
        // switch position; every link index must stay in range.
        let m = MeshTopology::new(8);
        assert_eq!(m.height(), 3);
        for a in 0..8 {
            for b in 0..8 {
                for link in m.xy_route(TileId(a), TileId(b)) {
                    assert!(
                        m.link_index(link) < m.num_link_slots(),
                        "route {a}->{b} overflows at {link:?}"
                    );
                }
            }
        }
    }

    proptest! {
        #[test]
        fn route_length_equals_manhattan_distance(
            tiles in 1u32..600,
            a in 0u32..600,
            b in 0u32..600,
        ) {
            let a = a % tiles;
            let b = b % tiles;
            let m = MeshTopology::new(tiles);
            let route = m.xy_route(TileId(a), TileId(b));
            prop_assert_eq!(route.len() as u32, m.hops(TileId(a), TileId(b)));
        }

        #[test]
        fn route_terminates_at_destination(
            tiles in 1u32..600,
            a in 0u32..600,
            b in 0u32..600,
        ) {
            let a = a % tiles;
            let b = b % tiles;
            let m = MeshTopology::new(tiles);
            // Walk the route and confirm we land on b.
            let (mut x, mut y) = m.coords(TileId(a));
            for link in m.xy_route(TileId(a), TileId(b)) {
                let (lx, ly) = m.coords(link.from);
                prop_assert_eq!((lx, ly), (x, y), "route must be contiguous");
                match link.dir {
                    Direction::East => x += 1,
                    Direction::West => x -= 1,
                    Direction::South => y += 1,
                    Direction::North => y -= 1,
                }
            }
            prop_assert_eq!((x, y), m.coords(TileId(b)));
        }
    }
}
