//! On-chip network modeling (paper §3.3).
//!
//! The network component routes packets between target tiles and accounts
//! for latency, serialization and contention. Following the paper:
//!
//! * several **network models** coexist, selected by message type — system
//!   traffic rides a zero-latency [`BasicModel`] so it never perturbs
//!   results, while application and memory traffic each get their own
//!   instance of the configured model;
//! * models share a common [`NetworkModel`] interface and are swappable;
//! * "regardless of the time-stamp of a packet, the network forwards
//!   messages immediately and delivers them in the order they are received" —
//!   models only compute *timestamps*; actual delivery order is whatever the
//!   transport produced.
//!
//! Three models are provided, mirroring §3.3: [`BasicModel`] (no delay),
//! [`MeshModel`] (hop count × per-hop latency + serialization), and
//! [`MeshContentionModel`] (adds per-link lax-queue contention driven by the
//! global-progress estimate).
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use graphite_base::{Cycles, GlobalProgress, TileId};
//! use graphite_network::{Network, Packet, TrafficClass};
//!
//! let cfg = graphite_config::presets::paper_default(16);
//! let progress = Arc::new(GlobalProgress::new(16));
//! let net = Network::new(&cfg, progress);
//! let p = Packet { src: TileId(0), dst: TileId(15), size_bytes: 64, send_time: Cycles(100) };
//! let d = net.route(TrafficClass::Memory, &p);
//! assert!(d.arrival > p.send_time);
//! assert_eq!(d.hops, 6); // 4x4 mesh: 3 hops east + 3 hops south
//! ```

pub mod models;
pub mod topology;

use std::sync::{Arc, OnceLock};

use graphite_base::{Cycles, GlobalProgress, SimError, TileId};
use graphite_ckpt::{corrupted, Checkpointable, Dec, Enc};
use graphite_config::{NetworkKind, SimConfig};
use graphite_trace::{
    MetricsRegistry, MetricsSnapshot, Obs, ShardedMetric, TraceEventKind, Tracer,
};

pub use models::{BasicModel, MeshContentionModel, MeshModel, NetworkModel, RingModel};
pub use topology::MeshTopology;

/// A packet presented to a network model for timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Source tile.
    pub src: TileId,
    /// Destination tile.
    pub dst: TileId,
    /// Payload size in bytes (drives serialization delay).
    pub size_bytes: u32,
    /// The sender's local clock when the packet was injected; every message
    /// carries this timestamp (paper §3.6.1).
    pub send_time: Cycles,
}

/// The result of routing one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Simulated arrival time at the destination (`send_time + latency`).
    pub arrival: Cycles,
    /// Total modeled latency.
    pub latency: Cycles,
    /// Portion of the latency due to contention (zero for contention-free
    /// models).
    pub contention: Cycles,
    /// Network hops traversed.
    pub hops: u32,
}

/// Traffic classes, each served by its own model instance (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Simulator-internal traffic; must not affect simulation results.
    System,
    /// Application messages (user messaging API).
    User,
    /// Memory-subsystem coherence traffic.
    Memory,
}

/// Per-class traffic statistics.
///
/// Counters are sharded per source tile: `route` is on the memory-system hot
/// path (every protocol leg passes through it), so each update lands in the
/// sending tile's cache-padded lane rather than a globally shared cell.
#[derive(Debug, Default)]
pub struct ClassStats {
    /// Packets routed.
    pub packets: ShardedMetric,
    /// Sum of hop counts.
    pub hops: ShardedMetric,
    /// Sum of modeled latencies (cycles).
    pub latency_sum: ShardedMetric,
    /// Sum of contention delays (cycles).
    pub contention_sum: ShardedMetric,
    /// Sum of payload bytes.
    pub bytes: ShardedMetric,
}

impl ClassStats {
    /// Builds stats registered in `metrics` under `net.<class>.*`. Each name
    /// still snapshots as a single scalar; the per-tile lanes are folded.
    pub fn registered(metrics: &MetricsRegistry, class: &str) -> Self {
        ClassStats {
            packets: metrics.sharded_counter(&format!("net.{class}.packets")),
            hops: metrics.sharded_counter(&format!("net.{class}.hops")),
            latency_sum: metrics.sharded_counter(&format!("net.{class}.latency_sum")),
            contention_sum: metrics.sharded_counter(&format!("net.{class}.contention_sum")),
            bytes: metrics.sharded_counter(&format!("net.{class}.bytes")),
        }
    }

    /// Mean end-to-end latency in cycles, or 0 with no traffic.
    pub fn mean_latency(&self) -> f64 {
        let n = self.packets.get();
        if n == 0 {
            0.0
        } else {
            self.latency_sum.get() as f64 / n as f64
        }
    }

    fn record(&self, p: &Packet, d: &Delivery) {
        let lane = p.src.index();
        self.packets.incr(lane);
        self.hops.add(lane, d.hops as u64);
        self.latency_sum.add(lane, d.latency.0);
        self.contention_sum.add(lane, d.contention.0);
        self.bytes.add(lane, p.size_bytes as u64);
    }
}

/// The per-simulation network component: three models (system / user /
/// memory) plus shared global-progress observation.
///
/// Every routed packet's timestamp feeds the [`GlobalProgress`] estimator —
/// the paper's source of the approximate global clock ("messages are
/// generated frequently, e.g. on every cache miss, so this window gives an
/// up-to-date representation of global progress").
pub struct Network {
    system: Box<dyn NetworkModel>,
    user: Box<dyn NetworkModel>,
    memory: Box<dyn NetworkModel>,
    progress: Arc<GlobalProgress>,
    system_stats: ClassStats,
    user_stats: ClassStats,
    memory_stats: ClassStats,
    tracer: Arc<Tracer>,
    /// Mesh geometry for per-link utilization accounting; independent of the
    /// timing model so a heatmap exists even under [`BasicModel`].
    topo: MeshTopology,
    /// Link width in bytes, for flit conversion.
    link_width: u32,
    metrics: Arc<MetricsRegistry>,
    /// Per-link flit counters (`net.link.<from>.<to>.flits`), indexed by
    /// [`MeshTopology::link_index`] and registered lazily the first time a
    /// route crosses the link, so idle links never appear in snapshots.
    link_flits: Box<[OnceLock<ShardedMetric>]>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("system", &self.system.name())
            .field("user", &self.user.name())
            .field("memory", &self.memory.name())
            .finish()
    }
}

impl Network {
    /// Builds the model set for a configuration: system traffic always uses
    /// [`BasicModel`]; user and memory traffic use the configured kind, each
    /// with an *independent* model instance (paper: "the default simulator
    /// configuration also uses separate models for application and memory
    /// traffic").
    pub fn new(cfg: &SimConfig, progress: Arc<GlobalProgress>) -> Self {
        Self::with_obs(cfg, progress, &Obs::detached(cfg.target.num_tiles as usize))
    }

    /// Like [`Network::new`], but with per-class counters registered under
    /// `net.*` in `obs.metrics` and packet events traced through
    /// `obs.tracer`.
    pub fn with_obs(cfg: &SimConfig, progress: Arc<GlobalProgress>, obs: &Obs) -> Self {
        let make = |kind: NetworkKind| -> Box<dyn NetworkModel> {
            match kind {
                NetworkKind::Basic => Box::new(BasicModel::new()),
                NetworkKind::Mesh => {
                    Box::new(MeshModel::new(cfg.target.num_tiles, cfg.target.mesh.clone()))
                }
                NetworkKind::Ring => {
                    Box::new(RingModel::new(cfg.target.num_tiles, cfg.target.mesh.clone()))
                }
                NetworkKind::MeshContention => Box::new(MeshContentionModel::new(
                    cfg.target.num_tiles,
                    cfg.target.mesh.clone(),
                    Arc::clone(&progress),
                )),
            }
        };
        let topo = MeshTopology::new(cfg.target.num_tiles);
        Network {
            system: Box::new(BasicModel::new()),
            user: make(cfg.target.network),
            memory: make(cfg.target.network),
            progress,
            system_stats: ClassStats::registered(&obs.metrics, "system"),
            user_stats: ClassStats::registered(&obs.metrics, "user"),
            memory_stats: ClassStats::registered(&obs.metrics, "memory"),
            tracer: Arc::clone(&obs.tracer),
            topo,
            link_width: cfg.target.mesh.link_width_bytes.max(1),
            metrics: Arc::clone(&obs.metrics),
            link_flits: (0..topo.num_link_slots()).map(|_| OnceLock::new()).collect(),
        }
    }

    /// Routes a packet on the model for its class, returning its delivery
    /// timing and updating statistics and the global-progress window.
    ///
    /// Only call this for packets whose `send_time` is a *tile's actual
    /// clock* (requests, writebacks, user messages): those timestamps feed
    /// the global-progress estimator. Protocol legs stamped with derived
    /// future times (forwards, acks, responses) must use
    /// [`Network::route_unobserved`] — otherwise queue-delay-inflated
    /// timestamps feed back into the progress estimate that queue delays
    /// are computed against, and the estimate ratchets away from real
    /// progress.
    pub fn route(&self, class: TrafficClass, p: &Packet) -> Delivery {
        self.route_flow(class, p, 0)
    }

    /// Like [`Network::route`], carrying the causal flow ID of the message
    /// this packet times. A non-zero `flow` (with flow tracing on) emits a
    /// [`TraceEventKind::FlowHop`] span for the leg.
    pub fn route_flow(&self, class: TrafficClass, p: &Packet, flow: u64) -> Delivery {
        // System traffic must not influence results, so it also skips the
        // progress window.
        if class != TrafficClass::System {
            self.progress.observe(p.send_time);
        }
        self.route_unobserved_flow(class, p, flow)
    }

    /// Routes a packet without feeding the global-progress window; for
    /// protocol legs whose timestamps are derived model times rather than
    /// tile clocks. Contention state and statistics still update.
    pub fn route_unobserved(&self, class: TrafficClass, p: &Packet) -> Delivery {
        self.route_unobserved_flow(class, p, 0)
    }

    /// Flow-carrying variant of [`Network::route_unobserved`]; see
    /// [`Network::route_flow`] for the flow semantics.
    pub fn route_unobserved_flow(&self, class: TrafficClass, p: &Packet, flow: u64) -> Delivery {
        let (model, stats) = match class {
            TrafficClass::System => (&self.system, &self.system_stats),
            TrafficClass::User => (&self.user, &self.user_stats),
            TrafficClass::Memory => (&self.memory, &self.memory_stats),
        };
        let d = model.route(p);
        stats.record(p, &d);
        if class != TrafficClass::System {
            self.record_links(p);
        }
        let class_name = match class {
            TrafficClass::System => "system",
            TrafficClass::User => "user",
            TrafficClass::Memory => "memory",
        };
        self.tracer.emit(p.src, p.send_time, || TraceEventKind::PacketSend {
            class: class_name,
            dst: p.dst.0,
            bytes: p.size_bytes as u64,
        });
        self.tracer.emit(p.dst, d.arrival, || TraceEventKind::PacketRecv {
            class: class_name,
            src: p.src.0,
            bytes: p.size_bytes as u64,
            latency: d.latency.0,
        });
        if flow != 0 && self.tracer.flows_enabled() {
            self.tracer.emit(p.src, p.send_time, || TraceEventKind::FlowHop {
                flow,
                src: p.src.0,
                dst: p.dst.0,
                arrival: d.arrival.0,
            });
        }
        d
    }

    /// Charges one packet's flits to every directed mesh link its XY route
    /// crosses. Lanes are per source tile, so concurrent requesters sharing
    /// a link do not contend on a counter cell.
    fn record_links(&self, p: &Packet) {
        if p.src == p.dst {
            return;
        }
        let flits = (p.size_bytes.div_ceil(self.link_width)).max(1) as u64;
        let lane = p.src.index();
        for link in self.topo.xy_links(p.src, p.dst) {
            let slot = self.topo.link_index(link);
            let counter = self.link_flits[slot].get_or_init(|| {
                self.metrics.sharded_counter(&format!(
                    "net.link.{}.{}.flits",
                    link.from.0,
                    self.topo.link_dst(link).0
                ))
            });
            counter.add(lane, flits);
        }
    }

    /// Re-creates the lazily registered `net.link.<from>.<to>.flits`
    /// counters named in a checkpoint's metrics snapshot, so a subsequent
    /// [`MetricsRegistry::restore`] finds them registered and restores
    /// their values (restore skips unknown names). Names that do not
    /// describe a mesh-adjacent pair of this topology are ignored.
    pub fn preregister_links(&self, snap: &MetricsSnapshot) {
        for name in snap.counters.keys() {
            let Some(ends) = name.strip_prefix("net.link.").and_then(|s| s.strip_suffix(".flits"))
            else {
                continue;
            };
            let Some((from, to)) = ends.split_once('.') else { continue };
            let (Ok(from), Ok(to)) = (from.parse::<u32>(), to.parse::<u32>()) else { continue };
            // A link counter only ever names a single mesh hop, so the XY
            // route from `from` to `to` is exactly that link.
            let mut links = self.topo.xy_links(TileId(from), TileId(to));
            let (Some(link), None) = (links.next(), links.next()) else { continue };
            let slot = self.topo.link_index(link);
            self.link_flits[slot].get_or_init(|| self.metrics.sharded_counter(name));
        }
    }

    /// Statistics for one traffic class.
    pub fn stats(&self, class: TrafficClass) -> &ClassStats {
        match class {
            TrafficClass::System => &self.system_stats,
            TrafficClass::User => &self.user_stats,
            TrafficClass::Memory => &self.memory_stats,
        }
    }

    /// The shared global-progress estimator.
    pub fn progress(&self) -> &Arc<GlobalProgress> {
        &self.progress
    }
}

/// Checkpoints the network's timing state: the global-progress observation
/// window and each model's link queue clocks. Per-class packet counters live
/// in the metrics registry and are restored with the metrics segment.
impl Checkpointable for Network {
    fn segment_name(&self) -> &'static str {
        "net"
    }

    fn save(&self, out: &mut Enc) {
        out.words(&self.progress.export_state());
        for model in [&self.system, &self.user, &self.memory] {
            out.str(model.name());
            out.words(&model.save_state());
        }
    }

    fn restore(&self, dec: &mut Dec<'_>) -> Result<(), SimError> {
        let bad = || corrupted("net");
        let progress = dec.words()?;
        if !self.progress.import_state(&progress) {
            return Err(bad());
        }
        for model in [&self.system, &self.user, &self.memory] {
            if dec.str()? != model.name() {
                return Err(bad());
            }
            let state = dec.words()?;
            if !model.load_state(&state) {
                return Err(bad());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphite_config::presets::paper_default;

    fn net(tiles: u32, kind: NetworkKind) -> Network {
        let mut cfg = paper_default(tiles);
        cfg.target.network = kind;
        Network::new(&cfg, Arc::new(GlobalProgress::new(tiles as usize)))
    }

    #[test]
    fn system_traffic_is_free_and_invisible() {
        let n = net(16, NetworkKind::Mesh);
        let p = Packet { src: TileId(0), dst: TileId(15), size_bytes: 512, send_time: Cycles(5) };
        let d = n.route(TrafficClass::System, &p);
        assert_eq!(d.latency, Cycles::ZERO);
        assert_eq!(d.arrival, Cycles(5));
        // System traffic does not move the progress estimate.
        assert_eq!(n.progress().estimate(), Cycles::ZERO);
    }

    #[test]
    fn memory_traffic_feeds_progress() {
        let n = net(16, NetworkKind::Mesh);
        let p = Packet { src: TileId(0), dst: TileId(1), size_bytes: 64, send_time: Cycles(1000) };
        n.route(TrafficClass::Memory, &p);
        assert_eq!(n.progress().estimate(), Cycles(1000));
    }

    #[test]
    fn stats_accumulate_per_class() {
        let n = net(16, NetworkKind::Mesh);
        let p = Packet { src: TileId(0), dst: TileId(3), size_bytes: 8, send_time: Cycles(0) };
        n.route(TrafficClass::User, &p);
        n.route(TrafficClass::User, &p);
        assert_eq!(n.stats(TrafficClass::User).packets.get(), 2);
        assert_eq!(n.stats(TrafficClass::User).hops.get(), 6);
        assert_eq!(n.stats(TrafficClass::Memory).packets.get(), 0);
        assert!(n.stats(TrafficClass::User).mean_latency() > 0.0);
    }

    #[test]
    fn user_and_memory_models_are_independent() {
        // With the contention model, hammering the memory network must not
        // slow down the user network.
        let n = net(4, NetworkKind::MeshContention);
        let p = Packet { src: TileId(0), dst: TileId(3), size_bytes: 64, send_time: Cycles(0) };
        for _ in 0..100 {
            n.route(TrafficClass::Memory, &p);
        }
        let d = n.route(TrafficClass::User, &p);
        assert_eq!(d.contention, Cycles::ZERO, "user network unaffected by memory load");
    }

    #[test]
    fn mean_latency_zero_when_idle() {
        let n = net(4, NetworkKind::Mesh);
        assert_eq!(n.stats(TrafficClass::User).mean_latency(), 0.0);
    }

    #[test]
    fn per_link_flit_counters_follow_xy_route() {
        let cfg = paper_default(16);
        let obs = Obs::detached(16);
        let n = Network::with_obs(&cfg, Arc::new(GlobalProgress::new(16)), &obs);
        // 64 bytes over 8-byte links = 8 flits; route 0 -> (east) 1 -> (south) 5.
        let p = Packet { src: TileId(0), dst: TileId(5), size_bytes: 64, send_time: Cycles(0) };
        n.route(TrafficClass::Memory, &p);
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counters["net.link.0.1.flits"], 8);
        assert_eq!(snap.counters["net.link.1.5.flits"], 8);
        // Idle links are never registered, and system traffic rides no links.
        assert!(!snap.counters.contains_key("net.link.1.2.flits"));
        n.route(TrafficClass::System, &p);
        assert_eq!(obs.metrics.snapshot().counters["net.link.0.1.flits"], 8);
    }

    #[test]
    fn route_flow_emits_flow_hop_only_when_tracked() {
        use graphite_trace::TraceOptions;
        let cfg = paper_default(16);
        let obs = Obs::new(16, TraceOptions { enabled: true, capacity: 64, flows: true });
        let n = Network::with_obs(&cfg, Arc::new(GlobalProgress::new(16)), &obs);
        let p = Packet { src: TileId(0), dst: TileId(3), size_bytes: 8, send_time: Cycles(10) };
        let d = n.route_flow(TrafficClass::Memory, &p, 7);
        let hops: Vec<_> = obs
            .tracer
            .drain()
            .into_iter()
            .filter(|e| matches!(e.kind, TraceEventKind::FlowHop { .. }))
            .collect();
        assert_eq!(hops.len(), 1);
        match hops[0].kind {
            TraceEventKind::FlowHop { flow, src, dst, arrival } => {
                assert_eq!((flow, src, dst, arrival), (7, 0, 3, d.arrival.0));
            }
            _ => unreachable!(),
        }
        assert_eq!(hops[0].tile, TileId(0));
        assert_eq!(hops[0].cycles, Cycles(10));
        // Flow 0 means untracked: no span even with flow tracing on.
        n.route_flow(TrafficClass::Memory, &p, 0);
        assert!(!obs
            .tracer
            .drain()
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::FlowHop { .. })));
    }

    #[test]
    fn checkpoint_restores_progress_and_link_clocks() {
        let n = net(4, NetworkKind::MeshContention);
        let p = Packet { src: TileId(0), dst: TileId(1), size_bytes: 64, send_time: Cycles(50) };
        for _ in 0..10 {
            n.route(TrafficClass::Memory, &p);
        }
        let mut enc = Enc::new();
        n.save(&mut enc);
        let buf = enc.finish();

        let fresh = net(4, NetworkKind::MeshContention);
        fresh.restore(&mut Dec::new(&buf)).unwrap();
        assert_eq!(fresh.progress().estimate(), n.progress().estimate());
        // The very next packet sees the same queueing delay in both.
        let d1 = n.route(TrafficClass::Memory, &p);
        let d2 = fresh.route(TrafficClass::Memory, &p);
        assert_eq!(d1, d2, "restored link clocks must reproduce contention");
        assert!(d1.contention > Cycles::ZERO, "test must exercise loaded links");
    }

    #[test]
    fn checkpoint_rejects_model_mismatch_and_truncation() {
        let n = net(4, NetworkKind::MeshContention);
        let mut enc = Enc::new();
        n.save(&mut enc);
        let buf = enc.finish();
        let other = net(4, NetworkKind::Mesh);
        assert!(matches!(other.restore(&mut Dec::new(&buf)), Err(SimError::CkptCorrupted { .. })));
        let fresh = net(4, NetworkKind::MeshContention);
        assert!(fresh.restore(&mut Dec::new(&buf[..buf.len() - 4])).is_err());
        assert!(fresh.restore(&mut Dec::new(&buf)).is_ok());
    }
}
