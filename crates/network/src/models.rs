//! The swappable network models (paper §3.3).
//!
//! "Each network model shares a common interface. Therefore, network model
//! implementations are swappable, and it is simple to develop new network
//! models. Currently, Graphite supports a basic model that forwards packets
//! with no delay (used for system messages), a mesh model that uses the
//! number of network hops to determine latency, and another mesh model that
//! tracks global network utilization to determine latency using an
//! analytical contention model."

use std::sync::Arc;

use graphite_base::{Cycles, GlobalProgress, LaxQueue};
use graphite_config::MeshConfig;

use crate::topology::MeshTopology;
use crate::{Delivery, Packet};

/// A network timing model: computes per-packet latency.
///
/// Implementations must be `Send + Sync`; they are shared by every tile
/// thread and invoked concurrently.
pub trait NetworkModel: Send + Sync {
    /// Model name for reports.
    fn name(&self) -> &'static str;

    /// Computes the delivery timing of one packet, updating any internal
    /// contention state.
    fn route(&self, p: &Packet) -> Delivery;

    /// Checkpoint export of any mutable timing state (link queue clocks).
    /// Stateless models return an empty vec.
    fn save_state(&self) -> Vec<u64> {
        vec![]
    }

    /// Restores state captured by [`NetworkModel::save_state`]; returns
    /// `false` when the words do not fit this model. Stateless models accept
    /// only an empty slice.
    fn load_state(&self, data: &[u64]) -> bool {
        data.is_empty()
    }
}

/// Zero-delay model used for system messages, which must not affect
/// simulation results.
#[derive(Debug, Default)]
pub struct BasicModel {
    _priv: (),
}

impl BasicModel {
    /// Creates the model.
    pub fn new() -> Self {
        BasicModel { _priv: () }
    }
}

impl NetworkModel for BasicModel {
    fn name(&self) -> &'static str {
        "basic"
    }

    fn route(&self, p: &Packet) -> Delivery {
        Delivery { arrival: p.send_time, latency: Cycles::ZERO, contention: Cycles::ZERO, hops: 0 }
    }
}

/// Contention-free mesh: `latency = hops × hop_latency + serialization`.
#[derive(Debug)]
pub struct MeshModel {
    topo: MeshTopology,
    cfg: MeshConfig,
}

impl MeshModel {
    /// Creates a mesh model for `tiles` tiles.
    pub fn new(tiles: u32, cfg: MeshConfig) -> Self {
        MeshModel { topo: MeshTopology::new(tiles), cfg }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &MeshTopology {
        &self.topo
    }

    fn serialization(&self, size_bytes: u32) -> Cycles {
        // Ceil-divide payload over the link width; at least one cycle on the
        // wire for a non-empty packet.
        Cycles((size_bytes as u64).div_ceil(self.cfg.link_width_bytes as u64))
    }
}

impl NetworkModel for MeshModel {
    fn name(&self) -> &'static str {
        "mesh"
    }

    fn route(&self, p: &Packet) -> Delivery {
        let hops = self.topo.hops(p.src, p.dst);
        let latency =
            Cycles(hops as u64 * self.cfg.hop_latency.0) + self.serialization(p.size_bytes);
        Delivery { arrival: p.send_time + latency, latency, contention: Cycles::ZERO, hops }
    }
}

/// A bidirectional ring: packets take the shorter direction, so the hop
/// count is `min(d, n - d)`. Average distance grows linearly with tile
/// count (vs. √n for the mesh), which is the architectural trade-off a
/// topology study would measure.
#[derive(Debug)]
pub struct RingModel {
    tiles: u32,
    cfg: MeshConfig,
}

impl RingModel {
    /// Creates a ring over `tiles` tiles.
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is zero.
    pub fn new(tiles: u32, cfg: MeshConfig) -> Self {
        assert!(tiles > 0, "ring needs at least one tile");
        RingModel { tiles, cfg }
    }

    /// Shortest ring distance between two tiles.
    pub fn hops(&self, a: graphite_base::TileId, b: graphite_base::TileId) -> u32 {
        let d = a.0.abs_diff(b.0);
        d.min(self.tiles - d)
    }

    fn serialization(&self, size_bytes: u32) -> Cycles {
        Cycles((size_bytes as u64).div_ceil(self.cfg.link_width_bytes as u64))
    }
}

impl NetworkModel for RingModel {
    fn name(&self) -> &'static str {
        "ring"
    }

    fn route(&self, p: &Packet) -> Delivery {
        let hops = self.hops(p.src, p.dst);
        let latency =
            Cycles(hops as u64 * self.cfg.hop_latency.0) + self.serialization(p.size_bytes);
        Delivery { arrival: p.send_time + latency, latency, contention: Cycles::ZERO, hops }
    }
}

/// Mesh with an analytical contention model: every directed link owns a
/// [`LaxQueue`]; a packet pays each traversed link's queueing delay, with
/// "now" approximated by the global-progress estimate (paper §3.6.1's queue
/// modeling applied to network switches).
pub struct MeshContentionModel {
    topo: MeshTopology,
    cfg: MeshConfig,
    links: Vec<LaxQueue>,
    progress: Arc<GlobalProgress>,
}

impl std::fmt::Debug for MeshContentionModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MeshContentionModel")
            .field("tiles", &self.topo.tiles())
            .field("links", &self.links.len())
            .finish()
    }
}

impl MeshContentionModel {
    /// Creates the model with idle links.
    pub fn new(tiles: u32, cfg: MeshConfig, progress: Arc<GlobalProgress>) -> Self {
        let topo = MeshTopology::new(tiles);
        let links = (0..topo.num_link_slots()).map(|_| LaxQueue::new()).collect();
        MeshContentionModel { topo, cfg, links, progress }
    }

    fn serialization(&self, size_bytes: u32) -> Cycles {
        Cycles((size_bytes as u64).div_ceil(self.cfg.link_width_bytes as u64))
    }

    /// Mean utilization across all links at the progress estimate (used by
    /// reports and tests).
    pub fn mean_utilization(&self) -> f64 {
        let now = self.progress.estimate();
        let sum: f64 = self.links.iter().map(|l| l.utilization(now)).sum();
        sum / self.links.len() as f64
    }
}

impl NetworkModel for MeshContentionModel {
    fn name(&self) -> &'static str {
        "mesh-contention"
    }

    fn route(&self, p: &Packet) -> Delivery {
        let hops = self.topo.hops(p.src, p.dst);
        let ser = self.serialization(p.size_bytes);
        // Reference time for the queue model: the global-progress estimate
        // (paper §3.6.1) — never the packet's own timestamp, which would
        // turn clock skew into phantom contention.
        let now = self.progress.estimate();
        let mut contention = Cycles::ZERO;
        for link in self.topo.xy_route(p.src, p.dst) {
            let q = &self.links[self.topo.link_index(link)];
            // Each traversal occupies the link for the serialization time.
            contention += q.submit(now + contention, ser);
        }
        let latency = Cycles(hops as u64 * self.cfg.hop_latency.0) + ser + contention;
        Delivery { arrival: p.send_time + latency, latency, contention, hops }
    }

    fn save_state(&self) -> Vec<u64> {
        self.links.iter().map(|l| l.clock().0).collect()
    }

    fn load_state(&self, data: &[u64]) -> bool {
        if data.len() != self.links.len() {
            return false;
        }
        for (link, &clock) in self.links.iter().zip(data) {
            link.set_clock(Cycles(clock));
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphite_base::TileId;

    fn mesh_cfg() -> MeshConfig {
        MeshConfig { hop_latency: Cycles(2), link_width_bytes: 8, utilization_window: 1024 }
    }

    #[test]
    fn basic_is_free() {
        let m = BasicModel::new();
        let p = Packet { src: TileId(0), dst: TileId(9), size_bytes: 4096, send_time: Cycles(7) };
        let d = m.route(&p);
        assert_eq!(d.latency, Cycles::ZERO);
        assert_eq!(d.arrival, Cycles(7));
        assert_eq!(d.hops, 0);
    }

    #[test]
    fn mesh_latency_formula() {
        let m = MeshModel::new(16, mesh_cfg());
        // 0 -> 15 on a 4x4 mesh: 6 hops; 64B / 8B = 8 cycles serialization.
        let p = Packet { src: TileId(0), dst: TileId(15), size_bytes: 64, send_time: Cycles(0) };
        let d = m.route(&p);
        assert_eq!(d.hops, 6);
        assert_eq!(d.latency, Cycles(6 * 2 + 8));
        assert_eq!(d.contention, Cycles::ZERO);
    }

    #[test]
    fn mesh_serialization_rounds_up() {
        let m = MeshModel::new(4, mesh_cfg());
        let p = Packet { src: TileId(0), dst: TileId(1), size_bytes: 9, send_time: Cycles(0) };
        // 9 bytes over an 8-byte link: 2 cycles.
        assert_eq!(m.route(&p).latency, Cycles(2 + 2));
    }

    #[test]
    fn local_delivery_pays_only_serialization() {
        let m = MeshModel::new(16, mesh_cfg());
        let p = Packet { src: TileId(3), dst: TileId(3), size_bytes: 8, send_time: Cycles(10) };
        let d = m.route(&p);
        assert_eq!(d.hops, 0);
        assert_eq!(d.latency, Cycles(1));
    }

    #[test]
    fn ring_takes_the_short_way_round() {
        let m = RingModel::new(16, mesh_cfg());
        use graphite_base::TileId;
        assert_eq!(m.hops(TileId(0), TileId(1)), 1);
        assert_eq!(m.hops(TileId(0), TileId(8)), 8);
        assert_eq!(m.hops(TileId(0), TileId(15)), 1, "wraps around");
        assert_eq!(m.hops(TileId(3), TileId(3)), 0);
        let p = Packet { src: TileId(0), dst: TileId(15), size_bytes: 8, send_time: Cycles(0) };
        assert_eq!(m.route(&p).latency, Cycles(2 + 1));
    }

    #[test]
    fn ring_scales_worse_than_mesh_on_average() {
        // Mean distance: ring n/4 vs mesh ~2/3·√n — at 64 tiles the ring
        // must be worse for far pairs.
        let ring = RingModel::new(64, mesh_cfg());
        let mesh = MeshModel::new(64, mesh_cfg());
        use graphite_base::TileId;
        let mut ring_sum = 0u64;
        let mut mesh_sum = 0u64;
        for a in 0..64u32 {
            for b in 0..64u32 {
                ring_sum += ring.hops(TileId(a), TileId(b)) as u64;
                mesh_sum += mesh.topology().hops(TileId(a), TileId(b)) as u64;
            }
        }
        assert!(ring_sum > 2 * mesh_sum, "ring {ring_sum} vs mesh {mesh_sum}");
    }

    #[test]
    fn contention_model_charges_queueing_under_load() {
        let progress = Arc::new(GlobalProgress::new(4));
        let m = MeshContentionModel::new(4, mesh_cfg(), Arc::clone(&progress));
        let p = Packet { src: TileId(0), dst: TileId(1), size_bytes: 64, send_time: Cycles(0) };
        let first = m.route(&p);
        assert_eq!(first.contention, Cycles::ZERO, "idle network");
        // Hammer the same link at the same timestamp: contention accumulates.
        let mut last = first;
        for _ in 0..10 {
            last = m.route(&p);
        }
        assert!(last.contention > Cycles::ZERO);
        assert!(last.latency > first.latency);
    }

    #[test]
    fn contention_drains_as_time_advances() {
        let progress = Arc::new(GlobalProgress::new(1));
        let m = MeshContentionModel::new(4, mesh_cfg(), Arc::clone(&progress));
        let early = Packet { src: TileId(0), dst: TileId(1), size_bytes: 64, send_time: Cycles(0) };
        for _ in 0..10 {
            m.route(&early);
        }
        // Far in the future (per the global-progress estimate, which the
        // Network facade feeds from message timestamps) the queues are idle.
        progress.observe(Cycles(1_000_000));
        let late =
            Packet { src: TileId(0), dst: TileId(1), size_bytes: 64, send_time: Cycles(1_000_000) };
        let d = m.route(&late);
        assert_eq!(d.contention, Cycles::ZERO);
    }

    #[test]
    fn disjoint_paths_do_not_contend() {
        let progress = Arc::new(GlobalProgress::new(16));
        let m = MeshContentionModel::new(16, mesh_cfg(), progress);
        let a = Packet { src: TileId(0), dst: TileId(1), size_bytes: 64, send_time: Cycles(0) };
        for _ in 0..20 {
            m.route(&a);
        }
        // Opposite corner of the mesh uses different links entirely.
        let b = Packet { src: TileId(15), dst: TileId(14), size_bytes: 64, send_time: Cycles(0) };
        assert_eq!(m.route(&b).contention, Cycles::ZERO);
    }

    #[test]
    fn mean_utilization_rises_with_traffic() {
        let progress = Arc::new(GlobalProgress::new(4));
        let m = MeshContentionModel::new(4, mesh_cfg(), Arc::clone(&progress));
        let idle = m.mean_utilization();
        let p = Packet { src: TileId(0), dst: TileId(3), size_bytes: 256, send_time: Cycles(100) };
        for _ in 0..50 {
            progress.observe(Cycles(100));
            m.route(&p);
        }
        assert!(m.mean_utilization() > idle);
    }
}
