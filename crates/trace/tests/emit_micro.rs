//! Microbenchmark for the tracer emit hot path (ignored by default; run with
//! `cargo test -p graphite-trace --release --test emit_micro -- --ignored --nocapture`).

use graphite_base::{Cycles, TileId};
use graphite_trace::{TraceEventKind, Tracer};
use std::time::Instant;

#[test]
#[ignore]
fn emit_cost() {
    const N: u64 = 4_000_000;
    let t = Tracer::new(1, true, 4096);
    let t0 = Instant::now();
    for i in 0..N {
        t.emit(TileId(0), Cycles(i), || TraceEventKind::MemOpStart { op: "load", addr: i });
    }
    let per = t0.elapsed().as_nanos() as f64 / N as f64;
    println!("emit enabled: {per:.1} ns/event");

    let off = Tracer::new(1, false, 4096);
    let t0 = Instant::now();
    for i in 0..N {
        off.emit(TileId(0), Cycles(i), || TraceEventKind::MemOpStart { op: "load", addr: i });
    }
    let per = t0.elapsed().as_nanos() as f64 / N as f64;
    println!("emit disabled: {per:.1} ns/event");
}

#[test]
#[ignore]
fn component_costs() {
    const N: u64 = 4_000_000;
    // Floor: std mutex + staged push, cleared every 64 (no second buffer).
    let m = std::sync::Mutex::new(Vec::<(u32, u64, u64, u64, u64)>::with_capacity(64));
    let t0 = Instant::now();
    for i in 0..N {
        let mut g = m.lock().unwrap();
        g.push((0, i, i, i, 0));
        if g.len() >= 64 {
            g.clear();
        }
    }
    println!("mutex+push floor: {:.1} ns/event", t0.elapsed().as_nanos() as f64 / N as f64);

    // Same without the lock.
    let mut v = Vec::<(u32, u64, u64, u64, u64)>::with_capacity(64);
    let t0 = Instant::now();
    for i in 0..N {
        v.push((0, i, i, i, 0));
        if v.len() >= 64 {
            v.clear();
        }
    }
    std::hint::black_box(&v);
    println!("bare push floor: {:.1} ns/event", t0.elapsed().as_nanos() as f64 / N as f64);
}

#[test]
#[ignore]
fn spinlock_floor() {
    use std::sync::atomic::{AtomicBool, Ordering};
    const N: u64 = 4_000_000;
    let flag = AtomicBool::new(false);
    let mut v = Vec::<(u32, u64, u64, u64, u64)>::with_capacity(64);
    let t0 = Instant::now();
    for i in 0..N {
        while flag.swap(true, Ordering::Acquire) {
            std::hint::spin_loop();
        }
        v.push((0, i, i, i, 0));
        if v.len() >= 64 {
            v.clear();
        }
        flag.store(false, Ordering::Release);
    }
    std::hint::black_box(&v);
    println!("spinlock+push floor: {:.1} ns/event", t0.elapsed().as_nanos() as f64 / N as f64);
}

#[test]
#[ignore]
fn emit_pair_cost() {
    const N: u64 = 4_000_000;
    let t = Tracer::new(1, true, 4096);
    let t0 = Instant::now();
    for i in 0..N {
        t.emit_pair(TileId(0), Cycles(i), || {
            (
                TraceEventKind::MemOpStart { op: "load", addr: i },
                TraceEventKind::MemOpDone { op: "load", addr: i, latency: 2, hit: true },
            )
        });
    }
    let per = t0.elapsed().as_nanos() as f64 / N as f64;
    println!("emit_pair enabled: {per:.1} ns/pair");
}
