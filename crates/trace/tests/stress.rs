//! Threaded stress tests: snapshots taken under parallel writers must not
//! lose increments. The profiler reads these structures live (skew sampler,
//! `Sim::metrics_snapshot`) while every tile thread is still writing, so
//! the final totals — observed after the writers join — have to be exact.

use std::sync::Arc;
use std::thread;

use graphite_trace::{Histogram, MetricsRegistry, ShardedHistogram, ShardedMetric};

const WRITERS: usize = 8;
const OPS: u64 = 20_000;

#[test]
fn histogram_loses_nothing_under_parallel_writers() {
    let h = Histogram::new();
    thread::scope(|s| {
        for t in 0..WRITERS {
            let h = &h;
            s.spawn(move || {
                for i in 0..OPS {
                    h.record((t as u64) * 1_000 + (i % 100));
                }
            });
        }
        // Concurrent snapshots must never tear past the true totals. (A
        // writer sits between its bucket and count increments at any
        // moment, so bucketed-vs-count can transiently disagree by the
        // number of in-flight writers — only the upper bound is exact.)
        let ceiling = (WRITERS as u64) * OPS;
        for _ in 0..50 {
            let snap = h.snapshot();
            let bucketed: u64 = snap.buckets.iter().map(|&(_, n)| n).sum();
            assert!(bucketed <= ceiling, "{bucketed} bucketed > {ceiling} recorded");
            assert!(snap.count <= ceiling, "{} counted > {ceiling} recorded", snap.count);
        }
    });
    let snap = h.snapshot();
    assert_eq!(snap.count, (WRITERS as u64) * OPS);
    let bucketed: u64 = snap.buckets.iter().map(|&(_, n)| n).sum();
    assert_eq!(bucketed, snap.count, "bucket counts must sum to the total");
    let expected_sum: u64 =
        (0..WRITERS as u64).map(|t| (0..OPS).map(|i| t * 1_000 + (i % 100)).sum::<u64>()).sum();
    assert_eq!(snap.sum, expected_sum);
}

#[test]
fn sharded_histogram_owned_lanes_lose_nothing() {
    let h = ShardedHistogram::new(WRITERS);
    thread::scope(|s| {
        for t in 0..WRITERS {
            let h = &h;
            // One owner per lane: the single-writer fast path must still be
            // exact when every lane is written simultaneously.
            s.spawn(move || {
                for i in 0..OPS {
                    h.record_owned(t, i % 512);
                }
            });
        }
    });
    let snap = h.snapshot();
    assert_eq!(snap.count, (WRITERS as u64) * OPS);
    assert_eq!(snap.sum, (WRITERS as u64) * (0..OPS).map(|i| i % 512).sum::<u64>());
}

#[test]
fn sharded_counter_mixed_apis_lose_nothing() {
    let m = ShardedMetric::new(WRITERS);
    thread::scope(|s| {
        for t in 0..WRITERS {
            let m = &m;
            s.spawn(move || {
                for i in 0..OPS {
                    if i % 2 == 0 {
                        m.add_owned(t, 2); // this thread owns lane t
                    } else {
                        m.incr_owned(t);
                    }
                }
            });
        }
        // A reader folding lanes mid-run sees a value that only grows.
        let mut last = 0;
        for _ in 0..100 {
            let v = m.get();
            assert!(v >= last, "sharded total went backwards: {v} < {last}");
            last = v;
        }
    });
    assert_eq!(m.get(), (WRITERS as u64) * (OPS / 2) * 3);
}

#[test]
fn registry_snapshot_under_parallel_writers_is_exact_after_join() {
    let reg = Arc::new(MetricsRegistry::new(WRITERS));
    let lanes = reg.per_tile("stress.tile.ops");
    let total = reg.counter("stress.ops");
    let hist = reg.histogram("stress.latency");
    let sharded = reg.sharded_counter("stress.sharded");
    thread::scope(|s| {
        for (t, lane) in lanes.iter().enumerate() {
            let lane = lane.clone();
            let total = total.clone();
            let hist = hist.clone();
            let sharded = sharded.clone();
            s.spawn(move || {
                for i in 0..OPS {
                    lane.add_owned(1);
                    total.add(1);
                    hist.record(i & 0xFF);
                    sharded.incr(t);
                }
            });
        }
        // Snapshotting while the writers run must not panic or tear the
        // per-metric maps; totals are monotone.
        let mut last = 0;
        for _ in 0..50 {
            let snap = reg.snapshot();
            let v = snap.counters.get("stress.ops").copied().unwrap_or(0);
            assert!(v >= last);
            last = v;
        }
    });
    let snap = reg.snapshot();
    let n = (WRITERS as u64) * OPS;
    assert_eq!(snap.counters["stress.ops"], n);
    assert_eq!(snap.per_tile["stress.tile.ops"].iter().sum::<u64>(), n);
    assert_eq!(snap.counters["stress.sharded"], n);
    let h = &snap.histograms["stress.latency"];
    assert_eq!(h.count, n);
    assert_eq!(h.buckets.iter().map(|&(_, c)| c).sum::<u64>(), n);
}
