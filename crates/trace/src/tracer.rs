//! Structured event tracing with batched per-tile ring buffers.
//!
//! Every traced subsystem calls [`Tracer::emit`] with a closure that builds
//! the event payload. When tracing is disabled (the default) the call is a
//! single relaxed atomic load and the closure is never run, so instrumented
//! hot paths pay one predictable branch. When enabled, the event lands
//! directly in the emitting tile's fixed-capacity ring under a per-tile
//! spinlock that only the owning tile's thread normally touches, so the
//! enabled path is one uncontended atomic swap plus a buffer push — no
//! global sequence allocation per event.
//!
//! Sequence numbers are instead allocated in *batches*: each lane seals a
//! block of [`Tracer::batch`] events with one global `fetch_add`, recording
//! only an (ordinal range → first seq) mark; [`Tracer::drain`] resolves each
//! event's sequence number from the marks. Events are therefore totally
//! ordered *within* a tile (emission order) but only batch-granular *across*
//! tiles. Simulator sync points (barriers, futex waits, thread exit) call
//! [`Tracer::flush`] to seal the current block, so cross-tile interleavings
//! stay accurate at synchronization granularity. Rings drop their *oldest*
//! entries when full — the tail of a run is what post-mortem debugging
//! wants — and drops are counted per tile ([`Tracer::dropped_per_tile`])
//! with a one-time warning line on first overflow.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use graphite_base::{Cycles, TileId};

use crate::json;

/// The payload of one traced event.
///
/// Numeric fields use plain integers (tile indices as `u32`, addresses and
/// sizes as `u64`) rather than the newtype ids so the enum stays `Copy` and
/// cheap to build inside `emit` closures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A core began a memory operation (`op` is "load", "store" or "ifetch").
    MemOpStart { op: &'static str, addr: u64 },
    /// A memory operation completed with its modeled latency.
    MemOpDone { op: &'static str, addr: u64, latency: u64, hit: bool },
    /// One leg of a directory coherence transaction (`leg` names the step,
    /// e.g. "dram_read", "invalidate", "writeback", "limitless_trap").
    DirLeg { leg: &'static str, addr: u64, home: u32 },
    /// A packet entered the interconnect model.
    PacketSend { class: &'static str, dst: u32, bytes: u64 },
    /// A packet was delivered, with its modeled end-to-end latency.
    PacketRecv { class: &'static str, src: u32, bytes: u64, latency: u64 },
    /// A thread blocked on a futex word.
    FutexWait { addr: u64 },
    /// A futex wake released `woken` waiters.
    FutexWake { addr: u64, woken: u64 },
    /// A tile reached the lax barrier and waits for the quantum to close.
    BarrierWait { quantum: u64 },
    /// The lax barrier released all tiles at the end of a quantum.
    BarrierRelease { waiters: u64 },
    /// A point-to-point sync check observed `skew` cycles of lead (positive
    /// means this tile is ahead of its randomly chosen partner).
    P2PCheck { skew: i64 },
    /// A point-to-point sync check decided to sleep.
    P2PSleep { micros: u64 },
    /// A clock-skew sample against global progress (positive = ahead).
    ClockSkew { skew: i64 },
    /// The MCP spawned a guest thread onto a tile.
    ThreadSpawn { thread: u32 },
    /// A guest thread exited.
    ThreadExit { thread: u32 },
    /// A modeled system call was issued.
    Syscall { name: &'static str },
    /// The guest sent a user-level message.
    UserMsgSend { dst: u32, bytes: u64 },
    /// The guest received a user-level message.
    UserMsgRecv { src: u32, bytes: u64 },
    /// A flow was injected into the network: the first causal span of a
    /// message flow (`kind` names the flow class, e.g. "mem_miss" or
    /// "user_msg"). Emitted on the requesting tile at injection time.
    FlowSend { flow: u64, dst: u32, kind: &'static str },
    /// One transport/network hop of a flow: the packet left `src` at this
    /// event's timestamp and reaches `dst` at `arrival`.
    FlowHop { flow: u64, src: u32, dst: u32, arrival: u64 },
    /// The directory (home tile) serviced a flow's request: processing began
    /// at this event's timestamp and the reply data was ready at `ready`.
    FlowService { flow: u64, home: u32, ready: u64 },
    /// The flow completed back at its origin with the given end-to-end
    /// latency (for memory flows this is exactly the access's `MemCost`
    /// latency).
    FlowReply { flow: u64, latency: u64 },
}

impl TraceEventKind {
    /// Stable event name used as the JSONL `"event"` field.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::MemOpStart { .. } => "mem_op_start",
            TraceEventKind::MemOpDone { .. } => "mem_op_done",
            TraceEventKind::DirLeg { .. } => "dir_leg",
            TraceEventKind::PacketSend { .. } => "packet_send",
            TraceEventKind::PacketRecv { .. } => "packet_recv",
            TraceEventKind::FutexWait { .. } => "futex_wait",
            TraceEventKind::FutexWake { .. } => "futex_wake",
            TraceEventKind::BarrierWait { .. } => "barrier_wait",
            TraceEventKind::BarrierRelease { .. } => "barrier_release",
            TraceEventKind::P2PCheck { .. } => "p2p_check",
            TraceEventKind::P2PSleep { .. } => "p2p_sleep",
            TraceEventKind::ClockSkew { .. } => "clock_skew",
            TraceEventKind::ThreadSpawn { .. } => "thread_spawn",
            TraceEventKind::ThreadExit { .. } => "thread_exit",
            TraceEventKind::Syscall { .. } => "syscall",
            TraceEventKind::UserMsgSend { .. } => "user_msg_send",
            TraceEventKind::UserMsgRecv { .. } => "user_msg_recv",
            TraceEventKind::FlowSend { .. } => "flow_send",
            TraceEventKind::FlowHop { .. } => "flow_hop",
            TraceEventKind::FlowService { .. } => "flow_service",
            TraceEventKind::FlowReply { .. } => "flow_reply",
        }
    }

    fn write_fields(&self, out: &mut String) {
        use std::fmt::Write;
        match *self {
            TraceEventKind::MemOpStart { op, addr } => {
                let _ = write!(out, ",\"op\":{},\"addr\":{addr}", json::quote(op));
            }
            TraceEventKind::MemOpDone { op, addr, latency, hit } => {
                let _ = write!(
                    out,
                    ",\"op\":{},\"addr\":{addr},\"latency\":{latency},\"hit\":{hit}",
                    json::quote(op)
                );
            }
            TraceEventKind::DirLeg { leg, addr, home } => {
                let _ =
                    write!(out, ",\"leg\":{},\"addr\":{addr},\"home\":{home}", json::quote(leg));
            }
            TraceEventKind::PacketSend { class, dst, bytes } => {
                let _ = write!(
                    out,
                    ",\"class\":{},\"dst\":{dst},\"bytes\":{bytes}",
                    json::quote(class)
                );
            }
            TraceEventKind::PacketRecv { class, src, bytes, latency } => {
                let _ = write!(
                    out,
                    ",\"class\":{},\"src\":{src},\"bytes\":{bytes},\"latency\":{latency}",
                    json::quote(class)
                );
            }
            TraceEventKind::FutexWait { addr } => {
                let _ = write!(out, ",\"addr\":{addr}");
            }
            TraceEventKind::FutexWake { addr, woken } => {
                let _ = write!(out, ",\"addr\":{addr},\"woken\":{woken}");
            }
            TraceEventKind::BarrierWait { quantum } => {
                let _ = write!(out, ",\"quantum\":{quantum}");
            }
            TraceEventKind::BarrierRelease { waiters } => {
                let _ = write!(out, ",\"waiters\":{waiters}");
            }
            TraceEventKind::P2PCheck { skew } | TraceEventKind::ClockSkew { skew } => {
                let _ = write!(out, ",\"skew\":{skew}");
            }
            TraceEventKind::P2PSleep { micros } => {
                let _ = write!(out, ",\"micros\":{micros}");
            }
            TraceEventKind::ThreadSpawn { thread } | TraceEventKind::ThreadExit { thread } => {
                let _ = write!(out, ",\"thread\":{thread}");
            }
            TraceEventKind::Syscall { name } => {
                let _ = write!(out, ",\"name\":{}", json::quote(name));
            }
            TraceEventKind::UserMsgSend { dst, bytes } => {
                let _ = write!(out, ",\"dst\":{dst},\"bytes\":{bytes}");
            }
            TraceEventKind::UserMsgRecv { src, bytes } => {
                let _ = write!(out, ",\"src\":{src},\"bytes\":{bytes}");
            }
            TraceEventKind::FlowSend { flow, dst, kind } => {
                let _ =
                    write!(out, ",\"flow\":{flow},\"dst\":{dst},\"kind\":{}", json::quote(kind));
            }
            TraceEventKind::FlowHop { flow, src, dst, arrival } => {
                let _ = write!(
                    out,
                    ",\"flow\":{flow},\"src\":{src},\"dst\":{dst},\"arrival\":{arrival}"
                );
            }
            TraceEventKind::FlowService { flow, home, ready } => {
                let _ = write!(out, ",\"flow\":{flow},\"home\":{home},\"ready\":{ready}");
            }
            TraceEventKind::FlowReply { flow, latency } => {
                let _ = write!(out, ",\"flow\":{flow},\"latency\":{latency}");
            }
        }
    }
}

/// One recorded event: global order, origin tile, local time, payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number: unique and ascending; allocated in per-tile
    /// batches, so the cross-tile order is batch-granular (see module docs).
    /// Gaps mark events lost to ring overflow.
    pub seq: u64,
    /// Tile that emitted the event.
    pub tile: TileId,
    /// The emitting tile's local clock at emission time.
    pub cycles: Cycles,
    /// Event payload.
    pub kind: TraceEventKind,
}

impl TraceEvent {
    /// Serializes this event as one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        use std::fmt::Write;
        let _ = write!(
            out,
            "{{\"seq\":{},\"tile\":{},\"cycles\":{},\"event\":\"{}\"",
            self.seq,
            self.tile.0,
            self.cycles.0,
            self.kind.name()
        );
        self.kind.write_fields(&mut out);
        out.push('}');
        out
    }
}

/// Serializes events as JSON Lines (one object per line, trailing newline).
pub fn export_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for e in events {
        out.push_str(&e.to_json());
        out.push('\n');
    }
    out
}

/// A sealed sequence block: ordinals `[start, upto)` of this lane map to
/// sequence numbers `[seq0, seq0 + (upto - start))`.
#[derive(Debug, Clone, Copy)]
struct SeqMark {
    start: u64,
    upto: u64,
    seq0: u64,
}

/// One tile's ring state, guarded by the lane spinlock. Events are stored
/// without sequence numbers; `pushed`/`evicted` are monotone ordinals
/// (`evicted` is the ordinal of the ring's front element) and `marks` holds
/// the sealed sequence blocks that `drain` resolves against.
struct LaneInner {
    ring: VecDeque<(TileId, Cycles, TraceEventKind)>,
    pushed: u64,
    evicted: u64,
    marked_upto: u64,
    marks: VecDeque<SeqMark>,
    dropped: u64,
}

impl LaneInner {
    /// Drop-oldest push. Returns true when events were evicted.
    ///
    /// Eviction happens in chunks of `evict_chunk` so a ring running at
    /// capacity pays the counter/prune bookkeeping once per chunk rather
    /// than on every push; the ring then holds between
    /// `capacity - evict_chunk + 1` and `capacity` events.
    #[inline]
    fn push(
        &mut self,
        capacity: usize,
        evict_chunk: usize,
        tile: TileId,
        now: Cycles,
        kind: TraceEventKind,
    ) -> bool {
        let mut evicted = false;
        if self.ring.len() >= capacity {
            let chunk = evict_chunk.min(self.ring.len());
            self.ring.drain(..chunk);
            self.evicted += chunk as u64;
            self.dropped += chunk as u64;
            evicted = true;
            // Marks whose range is fully below the ring front can never be
            // referenced again.
            while let Some(m) = self.marks.front() {
                if m.upto <= self.evicted {
                    self.marks.pop_front();
                } else {
                    break;
                }
            }
        }
        self.ring.push_back((tile, now, kind));
        self.pushed += 1;
        evicted
    }
}

/// A per-tile lane: a spinlock in front of the ring state. The lock is
/// normally uncontended — only the owning tile's thread emits into it — so
/// the fast path is one atomic swap and a release store.
struct Lane {
    locked: AtomicBool,
    inner: UnsafeCell<LaneInner>,
}

// SAFETY: `inner` is only accessed through `Lane::lock`, which provides
// mutual exclusion via the `locked` spinlock (acquire on entry, release on
// exit), so `&mut LaneInner` never aliases across threads.
unsafe impl Sync for Lane {}

impl Lane {
    fn new() -> Self {
        Lane {
            locked: AtomicBool::new(false),
            inner: UnsafeCell::new(LaneInner {
                ring: VecDeque::new(),
                pushed: 0,
                evicted: 0,
                marked_upto: 0,
                marks: VecDeque::new(),
                dropped: 0,
            }),
        }
    }

    #[inline]
    fn lock(&self) -> LaneGuard<'_> {
        while self.locked.swap(true, Ordering::Acquire) {
            std::hint::spin_loop();
        }
        LaneGuard { lane: self }
    }
}

struct LaneGuard<'a> {
    lane: &'a Lane,
}

impl std::ops::Deref for LaneGuard<'_> {
    type Target = LaneInner;
    #[inline]
    fn deref(&self) -> &LaneInner {
        // SAFETY: the guard holds the lane spinlock.
        unsafe { &*self.lane.inner.get() }
    }
}

impl std::ops::DerefMut for LaneGuard<'_> {
    #[inline]
    fn deref_mut(&mut self) -> &mut LaneInner {
        // SAFETY: the guard holds the lane spinlock.
        unsafe { &mut *self.lane.inner.get() }
    }
}

impl Drop for LaneGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        self.lane.locked.store(false, Ordering::Release);
    }
}

/// The event tracer: a runtime on/off switch in front of per-tile rings
/// with batched global sequencing.
///
/// # Examples
///
/// ```
/// use graphite_base::{Cycles, TileId};
/// use graphite_trace::{Tracer, TraceEventKind};
///
/// let tracer = Tracer::new(2, true, 64);
/// tracer.emit(TileId(1), Cycles(42), || TraceEventKind::FutexWait { addr: 0x1000 });
/// let events = tracer.drain();
/// assert_eq!(events.len(), 1);
/// assert_eq!(events[0].tile, TileId(1));
///
/// let off = Tracer::new(2, false, 64);
/// off.emit(TileId(0), Cycles(1), || unreachable!("closure never runs while disabled"));
/// assert!(off.drain().is_empty());
/// ```
pub struct Tracer {
    enabled: AtomicBool,
    /// Whether causal flow spans (Flow* events) are recorded; gated
    /// separately from `enabled` so ordinary tracing stays unchanged.
    flows: AtomicBool,
    /// Next flow ID to mint; flow 0 means "untracked".
    next_flow: AtomicU64,
    capacity: usize,
    /// Events per sealed sequence block.
    batch: usize,
    /// Oldest events evicted per overflow (amortizes full-ring bookkeeping).
    evict_chunk: usize,
    seq: AtomicU64,
    /// One-shot latch for the first-overflow warning line.
    drop_warned: AtomicBool,
    lanes: Vec<Lane>,
}

impl Tracer {
    /// Default number of events per sealed sequence block: how many events a
    /// tile records before taking one global-sequence allocation.
    pub const DEFAULT_BATCH: usize = 64;

    /// Creates a tracer with one ring of `capacity` events per tile.
    ///
    /// A zero tile count still gets one lane so events from control-plane
    /// threads always have somewhere to land.
    pub fn new(num_tiles: usize, enabled: bool, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let lanes = (0..num_tiles.max(1)).map(|_| Lane::new()).collect();
        Tracer {
            enabled: AtomicBool::new(enabled),
            flows: AtomicBool::new(false),
            next_flow: AtomicU64::new(1),
            capacity,
            batch: Self::DEFAULT_BATCH.min(capacity),
            // Rings smaller than 8 evict exactly one event (precise
            // semantics for tiny test rings); larger rings evict in chunks.
            evict_chunk: (capacity / 8).clamp(1, Self::DEFAULT_BATCH),
            seq: AtomicU64::new(0),
            drop_warned: AtomicBool::new(false),
            lanes,
        }
    }

    /// Whether events are currently being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off at runtime. Already-recorded events stay
    /// buffered either way; disabling loses nothing.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether causal flow spans are recorded: both the tracer and the flow
    /// gate must be on. One relaxed load short-circuits the common
    /// everything-off case, so untraced hot paths still pay a single branch.
    #[inline]
    pub fn flows_enabled(&self) -> bool {
        self.is_enabled() && self.flows.load(Ordering::Relaxed)
    }

    /// Turns flow-span recording on or off (off by default).
    pub fn set_flows(&self, on: bool) {
        self.flows.store(on, Ordering::Relaxed);
    }

    /// Mints a fresh nonzero flow ID. IDs are process-global and strictly
    /// increasing; flow 0 is reserved to mean "untracked message".
    #[inline]
    pub fn next_flow_id(&self) -> u64 {
        self.next_flow.fetch_add(1, Ordering::Relaxed)
    }

    /// Ring capacity per tile.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events per sealed sequence block (the batching granularity of the
    /// cross-tile event order).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Events discarded because a ring was full (drop-oldest policy), summed
    /// over tiles.
    pub fn dropped(&self) -> u64 {
        self.lanes.iter().map(|l| l.lock().dropped).sum()
    }

    /// Per-tile dropped-event counts (drop-oldest evictions per ring).
    pub fn dropped_per_tile(&self) -> Vec<u64> {
        self.lanes.iter().map(|l| l.lock().dropped).collect()
    }

    /// Records an event if tracing is enabled.
    ///
    /// The closure builds the payload and only runs when tracing is on, so a
    /// disabled tracer costs one relaxed load and a predictable branch. When
    /// on, the event goes straight into the emitting tile's ring under the
    /// lane spinlock — normally uncontended, since only the owning tile's
    /// thread emits there.
    #[inline]
    pub fn emit(&self, tile: TileId, now: Cycles, build: impl FnOnce() -> TraceEventKind) {
        if !self.is_enabled() {
            return;
        }
        self.stage(tile, now, build());
    }

    /// Records two events carrying the same timestamp under one lane-lock
    /// acquisition — the memory system's hot path uses this for its
    /// start/done pairs on cache hits.
    #[inline]
    pub fn emit_pair(
        &self,
        tile: TileId,
        now: Cycles,
        build: impl FnOnce() -> (TraceEventKind, TraceEventKind),
    ) {
        if !self.is_enabled() {
            return;
        }
        let (first, second) = build();
        let idx = self.lane_index(tile);
        let dropped = {
            let mut g = self.lanes[idx].lock();
            let d0 = g.push(self.capacity, self.evict_chunk, tile, now, first);
            let d1 = g.push(self.capacity, self.evict_chunk, tile, now, second);
            self.seal_if_due(&mut g);
            d0 || d1
        };
        if dropped {
            self.warn_once(idx);
        }
    }

    #[inline]
    fn lane_index(&self, tile: TileId) -> usize {
        // Events attributed to out-of-range tiles (e.g. control-plane work
        // before tile bring-up) fold into the last lane rather than panicking.
        (tile.index()).min(self.lanes.len() - 1)
    }

    fn stage(&self, tile: TileId, now: Cycles, kind: TraceEventKind) {
        let idx = self.lane_index(tile);
        let dropped = {
            let mut g = self.lanes[idx].lock();
            let d = g.push(self.capacity, self.evict_chunk, tile, now, kind);
            self.seal_if_due(&mut g);
            d
        };
        if dropped {
            self.warn_once(idx);
        }
    }

    /// Seals the lane's unmarked tail into a sequence block once it reaches
    /// the batch size: one global `fetch_add` for the whole block.
    #[inline]
    fn seal_if_due(&self, g: &mut LaneGuard<'_>) {
        if g.pushed - g.marked_upto >= self.batch as u64 {
            self.seal(g);
        }
    }

    fn seal(&self, g: &mut LaneGuard<'_>) {
        let n = g.pushed - g.marked_upto;
        if n == 0 {
            return;
        }
        let seq0 = self.seq.fetch_add(n, Ordering::Relaxed);
        let start = g.marked_upto;
        let upto = g.pushed;
        g.marks.push_back(SeqMark { start, upto, seq0 });
        g.marked_upto = upto;
    }

    #[cold]
    fn warn_once(&self, idx: usize) {
        if !self.drop_warned.load(Ordering::Relaxed)
            && !self.drop_warned.swap(true, Ordering::Relaxed)
        {
            eprintln!(
                "graphite-trace: trace ring full on tile {idx}; dropping oldest events \
                 (capacity {} per tile; raise TraceOptions::capacity or \
                 GRAPHITE_TRACE_CAPACITY)",
                self.capacity
            );
        }
    }

    /// Seals one tile's current sequence block.
    ///
    /// The simulator calls this at natural synchronization points — barrier
    /// waits, futex blocks, thread exit — so the cross-tile event order in a
    /// drained trace is accurate at synchronization granularity without
    /// paying per-event global sequencing on the hot path.
    pub fn flush(&self, tile: TileId) {
        let idx = self.lane_index(tile);
        let mut g = self.lanes[idx].lock();
        self.seal(&mut g);
    }

    /// Seals every tile's current sequence block.
    pub fn flush_all(&self) {
        for lane in &self.lanes {
            let mut g = lane.lock();
            self.seal(&mut g);
        }
    }

    /// Removes and returns every buffered event, ordered by global sequence.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut all = Vec::new();
        for lane in &self.lanes {
            let mut g = lane.lock();
            self.seal(&mut g);
            let evicted = g.evicted;
            let mut marks = g.marks.iter().copied();
            let mut cur = marks.next();
            for (j, &(tile, cycles, kind)) in g.ring.iter().enumerate() {
                let ordinal = evicted + j as u64;
                while let Some(m) = cur {
                    if ordinal >= m.upto {
                        cur = marks.next();
                    } else {
                        all.push(TraceEvent {
                            seq: m.seq0 + (ordinal - m.start),
                            tile,
                            cycles,
                            kind,
                        });
                        break;
                    }
                }
            }
            let pushed = g.pushed;
            g.ring.clear();
            g.marks.clear();
            g.evicted = pushed;
        }
        all.sort_by_key(|e| e.seq);
        all
    }

    /// Drains every buffered event and serializes them as JSON Lines.
    pub fn drain_jsonl(&self) -> String {
        export_jsonl(&self.drain())
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .field("capacity", &self.capacity)
            .field("batch", &self.batch)
            .field("tiles", &self.lanes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(addr: u64) -> TraceEventKind {
        TraceEventKind::FutexWait { addr }
    }

    #[test]
    fn disabled_tracer_never_builds_events() {
        let t = Tracer::new(2, false, 8);
        t.emit(TileId(0), Cycles(1), || panic!("must not run"));
        assert!(t.drain().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn runtime_toggle() {
        let t = Tracer::new(1, false, 8);
        t.emit(TileId(0), Cycles(1), || ev(1));
        t.set_enabled(true);
        t.emit(TileId(0), Cycles(2), || ev(2));
        t.set_enabled(false);
        t.emit(TileId(0), Cycles(3), || ev(3));
        let events = t.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, ev(2));
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let t = Tracer::new(1, true, 3);
        for i in 0..5 {
            t.emit(TileId(0), Cycles(i), || ev(i));
        }
        assert_eq!(t.dropped(), 2);
        let events = t.drain();
        assert_eq!(events.len(), 3);
        // The oldest two (addr 0, 1) were evicted.
        assert_eq!(events[0].kind, ev(2));
        assert_eq!(events[2].kind, ev(4));
    }

    #[test]
    fn drain_yields_unique_ascending_seqs_and_per_tile_order() {
        // Sequence numbers are allocated per sealed batch, so the total
        // order across tiles is batch-granular — but within one tile events
        // keep emission order, and seqs are globally unique and ascending
        // after the drain sort.
        let t = Tracer::new(3, true, 16);
        t.emit(TileId(2), Cycles(10), || ev(0));
        t.emit(TileId(0), Cycles(20), || ev(1));
        t.emit(TileId(2), Cycles(30), || ev(2));
        let events = t.drain();
        assert_eq!(events.len(), 3);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "seqs not strictly ascending: {seqs:?}");
        let tile2: Vec<TraceEventKind> =
            events.iter().filter(|e| e.tile == TileId(2)).map(|e| e.kind).collect();
        assert_eq!(tile2, vec![ev(0), ev(2)], "per-tile emission order must survive");
        // Drain empties the rings.
        assert!(t.drain().is_empty());
    }

    #[test]
    fn batch_boundary_seals_seq_blocks_automatically() {
        let t = Tracer::new(1, true, 1024);
        assert_eq!(t.batch(), Tracer::DEFAULT_BATCH);
        for i in 0..(Tracer::DEFAULT_BATCH as u64 * 2 + 5) {
            t.emit(TileId(0), Cycles(i), || ev(i));
        }
        // Two full batches sealed; 5 events still unsealed; drain gets all.
        let events = t.drain();
        assert_eq!(events.len(), Tracer::DEFAULT_BATCH * 2 + 5);
        let addrs: Vec<u64> = events
            .iter()
            .map(|e| match e.kind {
                TraceEventKind::FutexWait { addr } => addr,
                _ => unreachable!(),
            })
            .collect();
        let want: Vec<u64> = (0..addrs.len() as u64).collect();
        assert_eq!(addrs, want, "single-tile emission order must be exact");
    }

    #[test]
    fn emit_pair_records_both_events_in_order() {
        let t = Tracer::new(2, true, 64);
        t.emit_pair(TileId(1), Cycles(5), || {
            (
                TraceEventKind::MemOpStart { op: "load", addr: 0x40 },
                TraceEventKind::MemOpDone { op: "load", addr: 0x40, latency: 2, hit: true },
            )
        });
        let events = t.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind.name(), "mem_op_start");
        assert_eq!(events[1].kind.name(), "mem_op_done");
        assert!(events[0].seq < events[1].seq);
        assert_eq!(events[0].cycles, Cycles(5));
        assert_eq!(events[1].tile, TileId(1));

        let off = Tracer::new(2, false, 64);
        off.emit_pair(TileId(0), Cycles(1), || unreachable!("closure gated off"));
        assert!(off.drain().is_empty());
    }

    #[test]
    fn explicit_flush_seals_and_preserves_events() {
        let t = Tracer::new(2, true, 64);
        t.emit(TileId(1), Cycles(1), || ev(1));
        t.flush(TileId(1));
        t.flush(TileId(0)); // empty lane: a no-op
        t.emit(TileId(1), Cycles(2), || ev(2));
        t.flush_all();
        let events = t.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].tile, TileId(1));
        assert!(events[0].seq < events[1].seq);
    }

    #[test]
    fn dropped_is_counted_per_tile() {
        let t = Tracer::new(2, true, 2);
        for i in 0..6 {
            t.emit(TileId(1), Cycles(i), || ev(i));
        }
        t.emit(TileId(0), Cycles(0), || ev(100));
        assert_eq!(t.dropped_per_tile(), vec![0, 4]);
        assert_eq!(t.dropped(), 4);
    }

    #[test]
    fn overflow_leaves_seq_gaps_but_keeps_order() {
        // Capacity 4 with 10 emits: the survivors are the last four, their
        // seqs ascend, and drops show up as gaps rather than reordering.
        let t = Tracer::new(1, true, 4);
        for i in 0..10 {
            t.emit(TileId(0), Cycles(i), || ev(i));
        }
        let events = t.drain();
        assert_eq!(events.len(), 4);
        let addrs: Vec<u64> = events
            .iter()
            .map(|e| match e.kind {
                TraceEventKind::FutexWait { addr } => addr,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(addrs, vec![6, 7, 8, 9]);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(t.dropped(), 6);
    }

    #[test]
    fn out_of_range_tile_folds_into_last_ring() {
        let t = Tracer::new(2, true, 4);
        t.emit(TileId(99), Cycles(1), || ev(7));
        assert_eq!(t.drain().len(), 1);
    }

    #[test]
    fn every_event_kind_serializes_to_valid_json() {
        let kinds = [
            TraceEventKind::MemOpStart { op: "load", addr: 0x40 },
            TraceEventKind::MemOpDone { op: "store", addr: 0x40, latency: 57, hit: false },
            TraceEventKind::DirLeg { leg: "dram_read", addr: 0x80, home: 3 },
            TraceEventKind::PacketSend { class: "memory", dst: 2, bytes: 72 },
            TraceEventKind::PacketRecv { class: "user", src: 1, bytes: 16, latency: 9 },
            TraceEventKind::FutexWait { addr: 0x1000 },
            TraceEventKind::FutexWake { addr: 0x1000, woken: 2 },
            TraceEventKind::BarrierWait { quantum: 1000 },
            TraceEventKind::BarrierRelease { waiters: 4 },
            TraceEventKind::P2PCheck { skew: -37 },
            TraceEventKind::P2PSleep { micros: 120 },
            TraceEventKind::ClockSkew { skew: 88 },
            TraceEventKind::ThreadSpawn { thread: 5 },
            TraceEventKind::ThreadExit { thread: 5 },
            TraceEventKind::Syscall { name: "open" },
            TraceEventKind::UserMsgSend { dst: 1, bytes: 8 },
            TraceEventKind::UserMsgRecv { src: 0, bytes: 8 },
            TraceEventKind::FlowSend { flow: 7, dst: 3, kind: "mem_miss" },
            TraceEventKind::FlowHop { flow: 7, src: 0, dst: 3, arrival: 120 },
            TraceEventKind::FlowService { flow: 7, home: 3, ready: 180 },
            TraceEventKind::FlowReply { flow: 7, latency: 240 },
        ];
        let t = Tracer::new(1, true, 64);
        for (i, k) in kinds.iter().enumerate() {
            t.emit(TileId(0), Cycles(i as u64), || *k);
        }
        let jsonl = t.drain_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), kinds.len());
        for line in &lines {
            crate::json::validate(line).unwrap_or_else(|e| panic!("{e}\n{line}"));
            assert!(line.contains("\"seq\":"));
            assert!(line.contains("\"event\":"));
        }
    }

    #[test]
    fn flow_ids_are_unique_and_gated() {
        let t = Tracer::new(1, true, 8);
        assert!(!t.flows_enabled(), "flows default off");
        let a = t.next_flow_id();
        let b = t.next_flow_id();
        assert!(a >= 1, "flow 0 is reserved for untracked messages");
        assert!(b > a, "flow IDs must be strictly increasing");
        t.set_flows(true);
        assert!(t.flows_enabled());
        t.set_enabled(false);
        assert!(!t.flows_enabled(), "flow spans require the tracer itself on");
    }

    #[test]
    fn concurrent_emitters_keep_seqs_unique() {
        let t = std::sync::Arc::new(Tracer::new(4, true, 1 << 14));
        let mut handles = Vec::new();
        for tile in 0..4u32 {
            let t = std::sync::Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..2000u64 {
                    t.emit(TileId(tile), Cycles(i), || ev(i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let events = t.drain();
        assert_eq!(events.len(), 8000);
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        let len_before = seqs.len();
        seqs.dedup();
        assert_eq!(seqs.len(), len_before, "duplicate seq numbers");
        // Per-tile emission order must be intact.
        for tile in 0..4u32 {
            let addrs: Vec<u64> = events
                .iter()
                .filter(|e| e.tile == TileId(tile))
                .map(|e| match e.kind {
                    TraceEventKind::FutexWait { addr } => addr,
                    _ => unreachable!(),
                })
                .collect();
            let want: Vec<u64> = (0..2000).collect();
            assert_eq!(addrs, want);
        }
    }
}
