//! Structured event tracing with per-tile ring buffers.
//!
//! Every traced subsystem calls [`Tracer::emit`] with a closure that builds
//! the event payload. When tracing is disabled (the default) the call is a
//! single relaxed atomic load and the closure is never run, so instrumented
//! hot paths pay one predictable branch. When enabled, events carry a global
//! sequence number (for a total order across tiles), the emitting tile, and
//! that tile's local cycle count, and land in a fixed-capacity per-tile ring
//! that drops its *oldest* entry when full — the tail of a run is what post
//! mortem debugging wants.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use graphite_base::{Cycles, TileId};
use parking_lot::Mutex;

use crate::json;

/// The payload of one traced event.
///
/// Numeric fields use plain integers (tile indices as `u32`, addresses and
/// sizes as `u64`) rather than the newtype ids so the enum stays `Copy` and
/// cheap to build inside `emit` closures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A core began a memory operation (`op` is "load", "store" or "ifetch").
    MemOpStart { op: &'static str, addr: u64 },
    /// A memory operation completed with its modeled latency.
    MemOpDone { op: &'static str, addr: u64, latency: u64, hit: bool },
    /// One leg of a directory coherence transaction (`leg` names the step,
    /// e.g. "dram_read", "invalidate", "writeback", "limitless_trap").
    DirLeg { leg: &'static str, addr: u64, home: u32 },
    /// A packet entered the interconnect model.
    PacketSend { class: &'static str, dst: u32, bytes: u64 },
    /// A packet was delivered, with its modeled end-to-end latency.
    PacketRecv { class: &'static str, src: u32, bytes: u64, latency: u64 },
    /// A thread blocked on a futex word.
    FutexWait { addr: u64 },
    /// A futex wake released `woken` waiters.
    FutexWake { addr: u64, woken: u64 },
    /// A tile reached the lax barrier and waits for the quantum to close.
    BarrierWait { quantum: u64 },
    /// The lax barrier released all tiles at the end of a quantum.
    BarrierRelease { waiters: u64 },
    /// A point-to-point sync check observed `skew` cycles of lead (positive
    /// means this tile is ahead of its randomly chosen partner).
    P2PCheck { skew: i64 },
    /// A point-to-point sync check decided to sleep.
    P2PSleep { micros: u64 },
    /// A clock-skew sample against global progress (positive = ahead).
    ClockSkew { skew: i64 },
    /// The MCP spawned a guest thread onto a tile.
    ThreadSpawn { thread: u32 },
    /// A guest thread exited.
    ThreadExit { thread: u32 },
    /// A modeled system call was issued.
    Syscall { name: &'static str },
    /// The guest sent a user-level message.
    UserMsgSend { dst: u32, bytes: u64 },
    /// The guest received a user-level message.
    UserMsgRecv { src: u32, bytes: u64 },
}

impl TraceEventKind {
    /// Stable event name used as the JSONL `"event"` field.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::MemOpStart { .. } => "mem_op_start",
            TraceEventKind::MemOpDone { .. } => "mem_op_done",
            TraceEventKind::DirLeg { .. } => "dir_leg",
            TraceEventKind::PacketSend { .. } => "packet_send",
            TraceEventKind::PacketRecv { .. } => "packet_recv",
            TraceEventKind::FutexWait { .. } => "futex_wait",
            TraceEventKind::FutexWake { .. } => "futex_wake",
            TraceEventKind::BarrierWait { .. } => "barrier_wait",
            TraceEventKind::BarrierRelease { .. } => "barrier_release",
            TraceEventKind::P2PCheck { .. } => "p2p_check",
            TraceEventKind::P2PSleep { .. } => "p2p_sleep",
            TraceEventKind::ClockSkew { .. } => "clock_skew",
            TraceEventKind::ThreadSpawn { .. } => "thread_spawn",
            TraceEventKind::ThreadExit { .. } => "thread_exit",
            TraceEventKind::Syscall { .. } => "syscall",
            TraceEventKind::UserMsgSend { .. } => "user_msg_send",
            TraceEventKind::UserMsgRecv { .. } => "user_msg_recv",
        }
    }

    fn write_fields(&self, out: &mut String) {
        use std::fmt::Write;
        match *self {
            TraceEventKind::MemOpStart { op, addr } => {
                let _ = write!(out, ",\"op\":{},\"addr\":{addr}", json::quote(op));
            }
            TraceEventKind::MemOpDone { op, addr, latency, hit } => {
                let _ = write!(
                    out,
                    ",\"op\":{},\"addr\":{addr},\"latency\":{latency},\"hit\":{hit}",
                    json::quote(op)
                );
            }
            TraceEventKind::DirLeg { leg, addr, home } => {
                let _ =
                    write!(out, ",\"leg\":{},\"addr\":{addr},\"home\":{home}", json::quote(leg));
            }
            TraceEventKind::PacketSend { class, dst, bytes } => {
                let _ = write!(
                    out,
                    ",\"class\":{},\"dst\":{dst},\"bytes\":{bytes}",
                    json::quote(class)
                );
            }
            TraceEventKind::PacketRecv { class, src, bytes, latency } => {
                let _ = write!(
                    out,
                    ",\"class\":{},\"src\":{src},\"bytes\":{bytes},\"latency\":{latency}",
                    json::quote(class)
                );
            }
            TraceEventKind::FutexWait { addr } => {
                let _ = write!(out, ",\"addr\":{addr}");
            }
            TraceEventKind::FutexWake { addr, woken } => {
                let _ = write!(out, ",\"addr\":{addr},\"woken\":{woken}");
            }
            TraceEventKind::BarrierWait { quantum } => {
                let _ = write!(out, ",\"quantum\":{quantum}");
            }
            TraceEventKind::BarrierRelease { waiters } => {
                let _ = write!(out, ",\"waiters\":{waiters}");
            }
            TraceEventKind::P2PCheck { skew } | TraceEventKind::ClockSkew { skew } => {
                let _ = write!(out, ",\"skew\":{skew}");
            }
            TraceEventKind::P2PSleep { micros } => {
                let _ = write!(out, ",\"micros\":{micros}");
            }
            TraceEventKind::ThreadSpawn { thread } | TraceEventKind::ThreadExit { thread } => {
                let _ = write!(out, ",\"thread\":{thread}");
            }
            TraceEventKind::Syscall { name } => {
                let _ = write!(out, ",\"name\":{}", json::quote(name));
            }
            TraceEventKind::UserMsgSend { dst, bytes } => {
                let _ = write!(out, ",\"dst\":{dst},\"bytes\":{bytes}");
            }
            TraceEventKind::UserMsgRecv { src, bytes } => {
                let _ = write!(out, ",\"src\":{src},\"bytes\":{bytes}");
            }
        }
    }
}

/// One recorded event: global order, origin tile, local time, payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number: a total order across every tile's ring.
    pub seq: u64,
    /// Tile that emitted the event.
    pub tile: TileId,
    /// The emitting tile's local clock at emission time.
    pub cycles: Cycles,
    /// Event payload.
    pub kind: TraceEventKind,
}

impl TraceEvent {
    /// Serializes this event as one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        use std::fmt::Write;
        let _ = write!(
            out,
            "{{\"seq\":{},\"tile\":{},\"cycles\":{},\"event\":\"{}\"",
            self.seq,
            self.tile.0,
            self.cycles.0,
            self.kind.name()
        );
        self.kind.write_fields(&mut out);
        out.push('}');
        out
    }
}

/// Serializes events as JSON Lines (one object per line, trailing newline).
pub fn export_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for e in events {
        out.push_str(&e.to_json());
        out.push('\n');
    }
    out
}

struct Ring {
    events: VecDeque<TraceEvent>,
}

/// The event tracer: a runtime on/off switch in front of fixed-capacity
/// per-tile ring buffers.
///
/// # Examples
///
/// ```
/// use graphite_base::{Cycles, TileId};
/// use graphite_trace::{Tracer, TraceEventKind};
///
/// let tracer = Tracer::new(2, true, 64);
/// tracer.emit(TileId(1), Cycles(42), || TraceEventKind::FutexWait { addr: 0x1000 });
/// let events = tracer.drain();
/// assert_eq!(events.len(), 1);
/// assert_eq!(events[0].tile, TileId(1));
///
/// let off = Tracer::new(2, false, 64);
/// off.emit(TileId(0), Cycles(1), || unreachable!("closure never runs while disabled"));
/// assert!(off.drain().is_empty());
/// ```
pub struct Tracer {
    enabled: AtomicBool,
    capacity: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
    rings: Vec<Mutex<Ring>>,
}

impl Tracer {
    /// Creates a tracer with one ring of `capacity` events per tile.
    ///
    /// A zero tile count still gets one ring so events from control-plane
    /// threads always have somewhere to land.
    pub fn new(num_tiles: usize, enabled: bool, capacity: usize) -> Self {
        let rings =
            (0..num_tiles.max(1)).map(|_| Mutex::new(Ring { events: VecDeque::new() })).collect();
        Tracer {
            enabled: AtomicBool::new(enabled),
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            rings,
        }
    }

    /// Whether events are currently being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Ring capacity per tile.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events discarded because a ring was full (drop-oldest policy).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records an event if tracing is enabled.
    ///
    /// The closure builds the payload and only runs when tracing is on, so a
    /// disabled tracer costs one relaxed load and a predictable branch.
    #[inline]
    pub fn emit(&self, tile: TileId, now: Cycles, build: impl FnOnce() -> TraceEventKind) {
        if !self.is_enabled() {
            return;
        }
        self.record(tile, now, build());
    }

    #[cold]
    fn record(&self, tile: TileId, now: Cycles, kind: TraceEventKind) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let event = TraceEvent { seq, tile, cycles: now, kind };
        // Events attributed to out-of-range tiles (e.g. control-plane work
        // before tile bring-up) fold into ring 0 rather than panicking.
        let idx = (tile.index()).min(self.rings.len() - 1);
        let mut ring = self.rings[idx].lock();
        if ring.events.len() >= self.capacity {
            ring.events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.events.push_back(event);
    }

    /// Removes and returns every buffered event, ordered by global sequence.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut all = Vec::new();
        for ring in &self.rings {
            all.extend(ring.lock().events.drain(..));
        }
        all.sort_by_key(|e| e.seq);
        all
    }

    /// Drains every buffered event and serializes them as JSON Lines.
    pub fn drain_jsonl(&self) -> String {
        export_jsonl(&self.drain())
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .field("capacity", &self.capacity)
            .field("tiles", &self.rings.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(addr: u64) -> TraceEventKind {
        TraceEventKind::FutexWait { addr }
    }

    #[test]
    fn disabled_tracer_never_builds_events() {
        let t = Tracer::new(2, false, 8);
        t.emit(TileId(0), Cycles(1), || panic!("must not run"));
        assert!(t.drain().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn runtime_toggle() {
        let t = Tracer::new(1, false, 8);
        t.emit(TileId(0), Cycles(1), || ev(1));
        t.set_enabled(true);
        t.emit(TileId(0), Cycles(2), || ev(2));
        t.set_enabled(false);
        t.emit(TileId(0), Cycles(3), || ev(3));
        let events = t.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, ev(2));
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let t = Tracer::new(1, true, 3);
        for i in 0..5 {
            t.emit(TileId(0), Cycles(i), || ev(i));
        }
        assert_eq!(t.dropped(), 2);
        let events = t.drain();
        assert_eq!(events.len(), 3);
        // The oldest two (addr 0, 1) were evicted.
        assert_eq!(events[0].kind, ev(2));
        assert_eq!(events[2].kind, ev(4));
    }

    #[test]
    fn drain_merges_tiles_in_seq_order() {
        let t = Tracer::new(3, true, 16);
        t.emit(TileId(2), Cycles(10), || ev(0));
        t.emit(TileId(0), Cycles(20), || ev(1));
        t.emit(TileId(2), Cycles(30), || ev(2));
        let events = t.drain();
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(events[1].tile, TileId(0));
        // Drain empties the rings.
        assert!(t.drain().is_empty());
    }

    #[test]
    fn out_of_range_tile_folds_into_last_ring() {
        let t = Tracer::new(2, true, 4);
        t.emit(TileId(99), Cycles(1), || ev(7));
        assert_eq!(t.drain().len(), 1);
    }

    #[test]
    fn every_event_kind_serializes_to_valid_json() {
        let kinds = [
            TraceEventKind::MemOpStart { op: "load", addr: 0x40 },
            TraceEventKind::MemOpDone { op: "store", addr: 0x40, latency: 57, hit: false },
            TraceEventKind::DirLeg { leg: "dram_read", addr: 0x80, home: 3 },
            TraceEventKind::PacketSend { class: "memory", dst: 2, bytes: 72 },
            TraceEventKind::PacketRecv { class: "user", src: 1, bytes: 16, latency: 9 },
            TraceEventKind::FutexWait { addr: 0x1000 },
            TraceEventKind::FutexWake { addr: 0x1000, woken: 2 },
            TraceEventKind::BarrierWait { quantum: 1000 },
            TraceEventKind::BarrierRelease { waiters: 4 },
            TraceEventKind::P2PCheck { skew: -37 },
            TraceEventKind::P2PSleep { micros: 120 },
            TraceEventKind::ClockSkew { skew: 88 },
            TraceEventKind::ThreadSpawn { thread: 5 },
            TraceEventKind::ThreadExit { thread: 5 },
            TraceEventKind::Syscall { name: "open" },
            TraceEventKind::UserMsgSend { dst: 1, bytes: 8 },
            TraceEventKind::UserMsgRecv { src: 0, bytes: 8 },
        ];
        let t = Tracer::new(1, true, 64);
        for (i, k) in kinds.iter().enumerate() {
            t.emit(TileId(0), Cycles(i as u64), || *k);
        }
        let jsonl = t.drain_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), kinds.len());
        for line in &lines {
            crate::json::validate(line).unwrap_or_else(|e| panic!("{e}\n{line}"));
            assert!(line.contains("\"seq\":"));
            assert!(line.contains("\"event\":"));
        }
    }
}
