//! Minimal hand-rolled JSON support for the exporters.
//!
//! The workspace builds offline, so the exporters cannot lean on serde_json.
//! This module provides the two things they need: string escaping per RFC 8259
//! and a strict validator the test suites use to prove every exported document
//! (metrics.json, trace JSONL lines) is well-formed JSON.

/// Escapes `s` for embedding inside a JSON string literal (quotes included).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Validates that `s` is exactly one well-formed JSON value.
///
/// A strict recursive-descent check used by the exporter self-tests; not a
/// general-purpose parser (it discards the parsed structure).
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn validate(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos:?}")),
        None => Err("unexpected end of input".into()),
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if *pos == int_start {
        return Err(format!("malformed number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(format!("malformed number at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e') | Some(b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(format!("malformed number at byte {start}"));
        }
    }
    Ok(())
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {}", *pos));
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quote_escapes_specials() {
        assert_eq!(quote("plain"), "\"plain\"");
        assert_eq!(quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(quote("line\nbreak"), "\"line\\nbreak\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn validate_accepts_well_formed() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e+3",
            r#"{"a":[1,2,{"b":"c\nd"}],"e":null}"#,
            " { \"k\" : [ 1 , 2 ] } ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn validate_rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"unterminated",
            "01x",
            "{} extra",
            "{'a':1}",
        ] {
            assert!(validate(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn quoted_strings_validate() {
        let s = quote("weird \" \\ \n \t \u{7} payload");
        validate(&s).unwrap();
    }
}
