//! Observability layer for the Graphite-rs simulator.
//!
//! Graphite's value as a research vehicle comes from what it can *report*
//! about a run: cache miss breakdowns, network latencies, synchronization
//! slack (paper §5 evaluates all of these). This crate centralizes that
//! reporting in two cooperating pieces:
//!
//! * **Metrics** — a per-tile [`MetricsRegistry`] of named lock-free counters
//!   ([`Metric`]) and log₂ [`Histogram`]s. Subsystems register once at
//!   construction and update on hot paths with relaxed atomics; a
//!   [`MetricsSnapshot`] serializes the registry as `metrics.json`. Because
//!   the snapshot reads the same atomics the subsystems increment, any report
//!   built from the registry agrees with the export by construction.
//!
//! * **Tracing** — a [`Tracer`] of structured [`TraceEvent`]s (memory ops,
//!   directory transaction legs, packets, futex and barrier activity, clock
//!   skew samples) in fixed-capacity per-tile ring buffers, exported as JSON
//!   Lines. Tracing defaults to off and costs one branch per potential event
//!   while disabled; payload construction is deferred behind a closure.
//!
//! [`Obs`] bundles one registry and one tracer and is what the simulator
//! threads its observability context through.
//!
//! # Examples
//!
//! ```
//! use graphite_base::{Cycles, TileId};
//! use graphite_trace::{Obs, TraceEventKind, TraceOptions};
//!
//! let obs = Obs::new(4, TraceOptions { enabled: true, capacity: 1024, flows: false });
//! let misses = obs.metrics.counter("mem.misses");
//! misses.incr();
//! obs.tracer.emit(TileId(2), Cycles(100), || TraceEventKind::MemOpStart {
//!     op: "load",
//!     addr: 0x40,
//! });
//! assert_eq!(obs.metrics.snapshot().counters["mem.misses"], 1);
//! assert_eq!(obs.tracer.drain().len(), 1);
//! ```

use std::sync::Arc;

use graphite_base::HostProf;

pub mod expo;
pub mod json;
pub mod metrics;
pub mod tracer;

pub use expo::PromText;
pub use metrics::{
    Gauge, Histogram, HistogramSnapshot, LaneFold, Metric, MetricsRegistry, MetricsSnapshot,
    ShardedHistogram, ShardedMetric,
};
pub use tracer::{export_jsonl, TraceEvent, TraceEventKind, Tracer};

/// Runtime tracing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOptions {
    /// Whether event recording starts enabled.
    pub enabled: bool,
    /// Ring-buffer capacity per tile, in events.
    pub capacity: usize,
    /// Whether causal flow spans (Flow* events) are recorded; only takes
    /// effect when `enabled` is also set.
    pub flows: bool,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions { enabled: false, capacity: 4096, flows: false }
    }
}

/// The observability context a simulation carries: one metrics registry and
/// one event tracer, cheaply cloneable (both sides are `Arc`s).
#[derive(Debug, Clone)]
pub struct Obs {
    /// Named counters and histograms for this simulation.
    pub metrics: Arc<MetricsRegistry>,
    /// Structured event tracer for this simulation.
    pub tracer: Arc<Tracer>,
    /// Host-side cost profiler (`host.*` namespace). Disabled by default;
    /// instrumentation points cost one atomic load until it is enabled via
    /// [`Obs::with_hostprof`].
    pub hostprof: Arc<HostProf>,
}

impl Obs {
    /// Creates an observability context for `num_tiles` tiles. Host
    /// profiling starts disabled.
    pub fn new(num_tiles: usize, trace: TraceOptions) -> Self {
        let tracer = Tracer::new(num_tiles, trace.enabled, trace.capacity);
        tracer.set_flows(trace.flows);
        Obs {
            metrics: Arc::new(MetricsRegistry::new(num_tiles)),
            tracer: Arc::new(tracer),
            hostprof: HostProf::disabled(),
        }
    }

    /// Replaces the host profiler — pass [`HostProf::new`] to turn host-cost
    /// attribution on, or share one profiler across several sims (the serve
    /// path aggregates all jobs into one `host.*` exposition).
    pub fn with_hostprof(mut self, hostprof: Arc<HostProf>) -> Self {
        self.hostprof = hostprof;
        self
    }

    /// A context with tracing off — the default for subsystems constructed
    /// without explicit observability wiring.
    pub fn detached(num_tiles: usize) -> Self {
        Obs::new(num_tiles, TraceOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphite_base::{Cycles, TileId};

    #[test]
    fn obs_clone_shares_registry_and_tracer() {
        let obs = Obs::new(2, TraceOptions { enabled: true, capacity: 8, flows: false });
        let alias = obs.clone();
        obs.metrics.counter("x").add(3);
        assert_eq!(alias.metrics.counter("x").get(), 3);
        alias.tracer.emit(TileId(0), Cycles(1), || TraceEventKind::Syscall { name: "open" });
        assert_eq!(obs.tracer.drain().len(), 1);
    }

    #[test]
    fn detached_context_records_metrics_but_not_events() {
        let obs = Obs::detached(1);
        obs.metrics.counter("c").incr();
        obs.tracer.emit(TileId(0), Cycles(0), || unreachable!());
        assert_eq!(obs.metrics.snapshot().counters["c"], 1);
        assert!(obs.tracer.drain().is_empty());
    }
}
