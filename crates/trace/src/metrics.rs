//! Per-tile metrics registry.
//!
//! Subsystems register named counters and histograms once at construction and
//! then update them on hot paths with plain relaxed atomic operations — no
//! locks, no allocation, no name lookup. The registry keeps a shared handle to
//! every registered metric, so a [`MetricsSnapshot`] taken at any time reads
//! the very same atomics the subsystems increment. Reports built from the
//! registry therefore cannot drift from the exported `metrics.json`.
//!
//! Handles are cheap `Arc` clones. A [`Metric`] created via `Default` (or
//! [`Metric::new`]) is *detached*: fully functional but invisible to any
//! registry. That keeps stats structs usable in isolation (unit tests,
//! standalone subsystem construction) while production wiring goes through
//! [`MetricsRegistry::counter`] and friends.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use graphite_base::SimError;
use graphite_ckpt::{Dec, Enc};
use parking_lot::Mutex;

use crate::json;

/// A shared, lock-free `u64` counter.
///
/// Unlike `graphite_base::stats::Counter`, cloning a `Metric` shares the
/// underlying cell instead of snapshotting it — a clone held by the registry
/// observes every increment made through any other clone.
///
/// # Examples
///
/// ```
/// use graphite_trace::Metric;
/// let m = Metric::new();
/// let alias = m.clone();
/// m.add(3);
/// alias.incr();
/// assert_eq!(m.get(), 4);
/// ```
#[derive(Clone, Default, Debug)]
pub struct Metric(Arc<AtomicU64>);

impl Metric {
    /// Creates a detached counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one under the single-writer convention (see [`Metric::add_owned`]).
    #[inline]
    pub fn incr_owned(&self) {
        self.add_owned(1);
    }

    /// Adds `n` to a counter only ever written by the calling thread: a plain
    /// load + store instead of a locked read-modify-write. Concurrent readers
    /// ([`Metric::get`]) stay race-free, but racing *writers* would lose
    /// increments — use [`Metric::add`] unless this counter is thread-owned.
    #[inline]
    pub fn add_owned(&self, n: u64) {
        let v = self.0.load(Ordering::Relaxed).wrapping_add(n);
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Raises the value to `n` if `n` is larger (used for high-water marks).
    #[inline]
    pub fn observe_max(&self, n: u64) {
        self.0.fetch_max(n, Ordering::Relaxed);
    }

    /// Returns the current value and resets to zero.
    pub fn take(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// A shared, lock-free `u64` gauge: a level that moves both ways (queue
/// depth, in-flight slices), unlike the monotone [`Metric`].
///
/// Snapshots report gauges under `counters` — same namespace, same JSON
/// section — so registering one does not change the exported `metrics.json`
/// schema; the set-vs-accumulate semantic lives in the handle alone.
///
/// # Examples
///
/// ```
/// use graphite_trace::Gauge;
/// let g = Gauge::new();
/// g.set(7);
/// g.incr();
/// g.sub(3);
/// assert_eq!(g.get(), 5);
/// g.sub(100); // saturates at zero rather than wrapping
/// assert_eq!(g.get(), 0);
/// ```
#[derive(Clone, Default, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Creates a detached gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the level by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Lowers the level by one (saturating at zero).
    #[inline]
    pub fn decr(&self) {
        self.sub(1);
    }

    /// Raises the level by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Lowers the level by `n`, saturating at zero — a racy decrement must
    /// never wrap a depth gauge to 2^64.
    #[inline]
    pub fn sub(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(n)));
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// How a sharded metric's lanes combine into one reported value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneFold {
    /// Lanes are partial counts; the metric's value is their sum.
    Sum,
    /// Lanes are per-tile high-water marks; the value is their maximum.
    Max,
}

/// One cache-padded counter lane. 128-byte alignment keeps adjacent lanes on
/// separate cache-line *pairs*, defeating the adjacent-line prefetcher that
/// would otherwise re-create false sharing between neighbouring tiles.
#[derive(Debug, Default)]
#[repr(align(128))]
struct PaddedLane(AtomicU64);

#[derive(Debug)]
struct ShardedInner {
    lanes: Box<[PaddedLane]>,
    /// `lanes.len() - 1`; lane count is a power of two so any caller-supplied
    /// lane index folds in with a mask instead of a division.
    mask: usize,
    fold: LaneFold,
}

/// A shared `u64` counter split into cache-padded per-tile lanes.
///
/// The contention-free counterpart of [`Metric`]: writers update *their own*
/// lane (`incr`/`add`/`observe_max` take a lane index, by convention the
/// requesting tile), so concurrent tiles never touch a shared-writable cache
/// line. Readers fold the lanes at read time ([`ShardedMetric::get`]), which
/// is exact — relaxed per-lane loads of values only ever written with
/// relaxed RMWs — but O(lanes) instead of O(1).
///
/// Lane indices out of range fold in with a mask, so a detached counter
/// (`Default`, one lane) accepts any tile id and still sums correctly.
///
/// # Examples
///
/// ```
/// use graphite_trace::ShardedMetric;
/// let m = ShardedMetric::new(4);
/// m.add(0, 3);
/// m.incr(3);
/// assert_eq!(m.get(), 4);
/// assert_eq!(m.lane_get(3), 1);
/// ```
#[derive(Clone, Debug)]
pub struct ShardedMetric(Arc<ShardedInner>);

impl Default for ShardedMetric {
    fn default() -> Self {
        Self::new(1)
    }
}

impl ShardedMetric {
    /// Creates a detached sum-folded counter with at least `lanes` lanes
    /// (rounded up to a power of two).
    pub fn new(lanes: usize) -> Self {
        Self::with_fold(lanes, LaneFold::Sum)
    }

    /// Creates a detached counter with an explicit fold.
    pub fn with_fold(lanes: usize, fold: LaneFold) -> Self {
        let n = lanes.max(1).next_power_of_two();
        ShardedMetric(Arc::new(ShardedInner {
            lanes: (0..n).map(|_| PaddedLane::default()).collect(),
            mask: n - 1,
            fold,
        }))
    }

    #[inline]
    fn lane(&self, lane: usize) -> &AtomicU64 {
        &self.0.lanes[lane & self.0.mask].0
    }

    /// Adds one to `lane`.
    #[inline]
    pub fn incr(&self, lane: usize) {
        self.add(lane, 1);
    }

    /// Adds `n` to `lane`.
    #[inline]
    pub fn add(&self, lane: usize, n: u64) {
        self.lane(lane).fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to `lane`, which the caller owns (see
    /// [`ShardedMetric::add_owned`]).
    #[inline]
    pub fn incr_owned(&self, lane: usize) {
        self.add_owned(lane, 1);
    }

    /// Adds `n` to `lane` under the *single-writer* convention: only one
    /// thread (the lane's owning tile) ever writes this lane. That makes a
    /// plain load + store sufficient — no locked read-modify-write, which is
    /// the bulk of a counter update's cost on the hot path. Concurrent
    /// `get()`/snapshot readers are still race-free (atomic loads); a second
    /// *writer* on the same lane would lose increments, so callers that
    /// cannot guarantee lane ownership must use [`ShardedMetric::add`].
    #[inline]
    pub fn add_owned(&self, lane: usize, n: u64) {
        let cell = self.lane(lane);
        cell.store(cell.load(Ordering::Relaxed).wrapping_add(n), Ordering::Relaxed);
    }

    /// Raises `lane` to `n` if `n` is larger. After warm-up this is a plain
    /// load on the hot path: the RMW only runs when the mark actually moves.
    #[inline]
    pub fn observe_max(&self, lane: usize, n: u64) {
        let cell = self.lane(lane);
        if cell.load(Ordering::Relaxed) < n {
            cell.fetch_max(n, Ordering::Relaxed);
        }
    }

    /// The folded value across all lanes (sum or max, per construction).
    pub fn get(&self) -> u64 {
        let it = self.0.lanes.iter().map(|l| l.0.load(Ordering::Relaxed));
        match self.0.fold {
            LaneFold::Sum => it.fold(0u64, u64::wrapping_add),
            LaneFold::Max => it.max().unwrap_or(0),
        }
    }

    /// Number of lanes (a power of two).
    pub fn num_lanes(&self) -> usize {
        self.0.lanes.len()
    }

    /// Raw value of one lane (for invariant tests and lane-level reporting).
    pub fn lane_get(&self, lane: usize) -> u64 {
        self.lane(lane).load(Ordering::Relaxed)
    }

    /// How the lanes fold.
    pub fn fold(&self) -> LaneFold {
        self.0.fold
    }

    /// Overwrites the lanes with a previously folded value: the whole value
    /// goes into lane 0, every other lane is zeroed. Correct for both folds
    /// (a sum of `[v, 0, ..]` and a max of `[v, 0, ..]` are both `v`).
    fn set_folded(&self, v: u64) {
        for (i, lane) in self.0.lanes.iter().enumerate() {
            lane.0.store(if i == 0 { v } else { 0 }, Ordering::Relaxed);
        }
    }
}

const HIST_BUCKETS: usize = 65;

/// One cache-padded histogram lane: log₂ buckets plus a running sum. The
/// sample count is *not* stored — it is the sum of the bucket counts, derived
/// at snapshot time — so recording costs two relaxed RMWs, not three.
#[derive(Debug)]
#[repr(align(128))]
struct HistLane {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

impl Default for HistLane {
    fn default() -> Self {
        HistLane { buckets: std::array::from_fn(|_| AtomicU64::new(0)), sum: AtomicU64::new(0) }
    }
}

#[derive(Debug)]
struct ShardedHistInner {
    lanes: Box<[HistLane]>,
    mask: usize,
}

/// A log₂-bucketed histogram split into cache-padded per-tile lanes.
///
/// The contention-free counterpart of [`Histogram`]: each recording tile
/// updates only its own lane, and [`ShardedHistogram::snapshot`] folds the
/// lanes into the same [`HistogramSnapshot`] shape a plain histogram
/// produces — bucket-for-bucket identical counts, so downstream consumers
/// (reports, `metrics.json`) cannot tell the two apart.
///
/// # Examples
///
/// ```
/// use graphite_trace::ShardedHistogram;
/// let h = ShardedHistogram::new(4);
/// h.record(0, 5);
/// h.record(3, 6);
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 2);
/// assert_eq!(snap.sum, 11);
/// assert_eq!(snap.buckets, vec![(7, 2)]);
/// ```
#[derive(Clone, Debug)]
pub struct ShardedHistogram(Arc<ShardedHistInner>);

impl Default for ShardedHistogram {
    fn default() -> Self {
        Self::new(1)
    }
}

impl ShardedHistogram {
    /// Creates a detached sharded histogram with at least `lanes` lanes
    /// (rounded up to a power of two).
    pub fn new(lanes: usize) -> Self {
        let n = lanes.max(1).next_power_of_two();
        ShardedHistogram(Arc::new(ShardedHistInner {
            lanes: (0..n).map(|_| HistLane::default()).collect(),
            mask: n - 1,
        }))
    }

    /// Records one sample in `lane` (two relaxed RMWs on that lane only).
    #[inline]
    pub fn record(&self, lane: usize, v: u64) {
        let l = &self.0.lanes[lane & self.0.mask];
        let idx = (64 - v.leading_zeros()) as usize;
        l.buckets[idx].fetch_add(1, Ordering::Relaxed);
        l.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records one sample in a lane the caller owns (single-writer, like
    /// [`ShardedMetric::add_owned`]): plain loads + stores, no locked RMW.
    #[inline]
    pub fn record_owned(&self, lane: usize, v: u64) {
        let l = &self.0.lanes[lane & self.0.mask];
        let idx = (64 - v.leading_zeros()) as usize;
        let b = &l.buckets[idx];
        b.store(b.load(Ordering::Relaxed).wrapping_add(1), Ordering::Relaxed);
        l.sum.store(l.sum.load(Ordering::Relaxed).wrapping_add(v), Ordering::Relaxed);
    }

    /// Number of lanes (a power of two).
    pub fn num_lanes(&self) -> usize {
        self.0.lanes.len()
    }

    /// Samples recorded in one lane (sum of its bucket counts).
    pub fn lane_count(&self, lane: usize) -> u64 {
        self.0.lanes[lane & self.0.mask]
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }

    /// Sum of samples recorded in one lane.
    pub fn lane_sum(&self, lane: usize) -> u64 {
        self.0.lanes[lane & self.0.mask].sum.load(Ordering::Relaxed)
    }

    /// Total samples across all lanes.
    pub fn count(&self) -> u64 {
        (0..self.num_lanes()).map(|i| self.lane_count(i)).fold(0u64, u64::wrapping_add)
    }

    /// Sum of all samples across all lanes.
    pub fn sum(&self) -> u64 {
        self.0.lanes.iter().map(|l| l.sum.load(Ordering::Relaxed)).fold(0u64, u64::wrapping_add)
    }

    /// Folds all lanes into one distribution, shaped exactly like
    /// [`Histogram::snapshot`].
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut folded = [0u64; HIST_BUCKETS];
        let mut sum = 0u64;
        for lane in self.0.lanes.iter() {
            for (f, b) in folded.iter_mut().zip(lane.buckets.iter()) {
                *f = f.wrapping_add(b.load(Ordering::Relaxed));
            }
            sum = sum.wrapping_add(lane.sum.load(Ordering::Relaxed));
        }
        let count = folded.iter().fold(0u64, |a, &n| a.wrapping_add(n));
        let buckets = folded
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_upper(i), n))
            .collect();
        HistogramSnapshot { count, sum, buckets }
    }

    /// Overwrites all lanes with a snapshot's distribution, folded into
    /// lane 0. Returns `false` when a bucket bound is not a valid boundary.
    fn restore_from(&self, snap: &HistogramSnapshot) -> bool {
        let Some(buckets) = unpack_buckets(snap) else { return false };
        for (li, lane) in self.0.lanes.iter().enumerate() {
            for (cell, &v) in lane.buckets.iter().zip(buckets.iter()) {
                cell.store(if li == 0 { v } else { 0 }, Ordering::Relaxed);
            }
            lane.sum.store(if li == 0 { snap.sum } else { 0 }, Ordering::Relaxed);
        }
        true
    }
}

#[derive(Debug)]
struct HistInner {
    /// `buckets[0]` counts zero samples; `buckets[i]` (i ≥ 1) counts samples
    /// whose bit length is `i`, i.e. values in `[2^(i-1), 2^i - 1]`.
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A shared, lock-free log₂-bucketed histogram of `u64` samples.
///
/// Latency distributions in a simulator span orders of magnitude (an L1 hit
/// is ~1 cycle, a cross-machine DRAM fill is thousands), so fixed-width bins
/// waste space while power-of-two bins stay informative at every scale.
///
/// # Examples
///
/// ```
/// use graphite_trace::Histogram;
/// let h = Histogram::new();
/// h.record(0);
/// h.record(5);
/// h.record(6);
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 3);
/// assert_eq!(snap.sum, 11);
/// // 5 and 6 share the [4, 7] bucket.
/// assert_eq!(snap.buckets, vec![(0, 1), (7, 2)]);
/// ```
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Creates a detached histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let idx = (64 - v.leading_zeros()) as usize;
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wraps on overflow, like the counters it joins).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Captures the current distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .0
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_upper(i), n))
            })
            .collect();
        HistogramSnapshot { count: self.count(), sum: self.sum(), buckets }
    }

    /// Overwrites the distribution with a snapshot's contents. Returns
    /// `false` when a bucket bound is not a valid boundary.
    fn restore_from(&self, snap: &HistogramSnapshot) -> bool {
        let Some(buckets) = unpack_buckets(snap) else { return false };
        for (cell, v) in self.0.buckets.iter().zip(buckets) {
            cell.store(v, Ordering::Relaxed);
        }
        self.0.count.store(snap.count, Ordering::Relaxed);
        self.0.sum.store(snap.sum, Ordering::Relaxed);
        true
    }
}

/// Inclusive upper bound of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// Inverse of [`bucket_upper`]: the bucket index whose inclusive upper bound
/// is `upper`, or `None` for a value that is not a bucket boundary.
fn bucket_index(upper: u64) -> Option<usize> {
    match upper {
        0 => Some(0),
        u64::MAX => Some(64),
        u => {
            let i = (64 - u.leading_zeros()) as usize;
            (u == (1u64 << i) - 1).then_some(i)
        }
    }
}

/// Expands a snapshot's sparse `(upper, count)` pairs into the dense bucket
/// array, or `None` when an upper bound is not a valid boundary.
fn unpack_buckets(snap: &HistogramSnapshot) -> Option<[u64; HIST_BUCKETS]> {
    let mut buckets = [0u64; HIST_BUCKETS];
    for &(upper, n) in &snap.buckets {
        buckets[bucket_index(upper)?] = n;
    }
    Some(buckets)
}

/// Point-in-time copy of one [`Histogram`]'s distribution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// `(inclusive_upper_bound, count)` for each non-empty bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Inclusive upper bound of the bucket holding the `q`-quantile sample
    /// (0 when empty). Log₂ buckets bound the answer from above: the true
    /// quantile lies in `(upper/2, upper]`, which is plenty for p50/p95/p99
    /// summaries over latency distributions spanning orders of magnitude.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(upper, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return upper;
            }
        }
        self.buckets.last().map_or(0, |b| b.0)
    }
}

#[derive(Debug)]
enum Entry {
    Counter(Metric),
    Gauge(Gauge),
    PerTile(Vec<Metric>),
    Histogram(Histogram),
    Sharded(ShardedMetric),
    ShardedHistogram(ShardedHistogram),
}

impl Entry {
    fn kind(&self) -> &'static str {
        match self {
            Entry::Counter(_) => "counter",
            Entry::Gauge(_) => "gauge",
            Entry::PerTile(_) => "per-tile counter",
            Entry::Histogram(_) => "histogram",
            Entry::Sharded(m) => match m.fold() {
                LaneFold::Sum => "sharded counter",
                LaneFold::Max => "sharded max counter",
            },
            Entry::ShardedHistogram(_) => "sharded histogram",
        }
    }
}

/// Registry of every named metric a simulation exposes.
///
/// Registration is idempotent: asking twice for the same name (with the same
/// kind) returns handles to the same cells, so independent subsystems may
/// share a metric. Asking for an existing name with a *different* kind is a
/// wiring bug and panics.
///
/// # Examples
///
/// ```
/// use graphite_trace::MetricsRegistry;
/// let reg = MetricsRegistry::new(2);
/// let sends = reg.counter("net.sends");
/// sends.add(5);
/// let per_tile = reg.per_tile("mem.accesses");
/// per_tile[1].incr();
/// let snap = reg.snapshot();
/// assert_eq!(snap.counters["net.sends"], 5);
/// assert_eq!(snap.per_tile["mem.accesses"], vec![0, 1]);
/// ```
#[derive(Debug)]
pub struct MetricsRegistry {
    num_tiles: usize,
    entries: Mutex<BTreeMap<String, Entry>>,
}

impl MetricsRegistry {
    /// Creates an empty registry for a target with `num_tiles` tiles.
    pub fn new(num_tiles: usize) -> Self {
        MetricsRegistry { num_tiles, entries: Mutex::new(BTreeMap::new()) }
    }

    /// Number of tiles every per-tile metric is sized for.
    pub fn num_tiles(&self) -> usize {
        self.num_tiles
    }

    /// Returns the global counter named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Metric {
        let mut entries = self.entries.lock();
        match entries.entry(name.to_string()).or_insert_with(|| Entry::Counter(Metric::new())) {
            Entry::Counter(m) => m.clone(),
            other => panic!("metric '{name}' already registered as a {}", other.kind()),
        }
    }

    /// Returns the gauge named `name`, registering it on first use. Snapshots
    /// report the level under `counters` (see [`Gauge`]), so gauges join the
    /// existing namespace and exported schema.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut entries = self.entries.lock();
        match entries.entry(name.to_string()).or_insert_with(|| Entry::Gauge(Gauge::new())) {
            Entry::Gauge(g) => g.clone(),
            other => panic!("metric '{name}' already registered as a {}", other.kind()),
        }
    }

    /// Returns the per-tile counter lane named `name` (one [`Metric`] per
    /// tile), registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn per_tile(&self, name: &str) -> Vec<Metric> {
        let mut entries = self.entries.lock();
        match entries
            .entry(name.to_string())
            .or_insert_with(|| Entry::PerTile((0..self.num_tiles).map(|_| Metric::new()).collect()))
        {
            Entry::PerTile(v) => v.clone(),
            other => panic!("metric '{name}' already registered as a {}", other.kind()),
        }
    }

    /// Returns the histogram named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut entries = self.entries.lock();
        match entries.entry(name.to_string()).or_insert_with(|| Entry::Histogram(Histogram::new()))
        {
            Entry::Histogram(h) => h.clone(),
            other => panic!("metric '{name}' already registered as a {}", other.kind()),
        }
    }

    /// Returns the sharded (per-tile-lane, sum-folded) counter named `name`,
    /// registering it on first use with one lane per tile.
    ///
    /// Snapshots report the *folded* value under `counters` — the name lives
    /// in the same namespace and JSON section as [`MetricsRegistry::counter`],
    /// so moving a hot counter onto lanes does not change the exported schema.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind
    /// (including a max-folded sharded counter).
    pub fn sharded_counter(&self, name: &str) -> ShardedMetric {
        self.sharded(name, LaneFold::Sum)
    }

    /// Returns the sharded max-folded counter named `name` (a high-water mark
    /// tracked per lane, reported as the maximum across lanes).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind
    /// (including a sum-folded sharded counter).
    pub fn sharded_max(&self, name: &str) -> ShardedMetric {
        self.sharded(name, LaneFold::Max)
    }

    fn sharded(&self, name: &str, fold: LaneFold) -> ShardedMetric {
        let mut entries = self.entries.lock();
        match entries
            .entry(name.to_string())
            .or_insert_with(|| Entry::Sharded(ShardedMetric::with_fold(self.num_tiles, fold)))
        {
            Entry::Sharded(m) if m.fold() == fold => m.clone(),
            other => panic!("metric '{name}' already registered as a {}", other.kind()),
        }
    }

    /// Returns the sharded histogram named `name`, registering it on first
    /// use with one lane per tile. Snapshots fold the lanes and report the
    /// result under `histograms`, indistinguishable from a plain
    /// [`Histogram`] with the same samples.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn sharded_histogram(&self, name: &str) -> ShardedHistogram {
        let mut entries = self.entries.lock();
        match entries
            .entry(name.to_string())
            .or_insert_with(|| Entry::ShardedHistogram(ShardedHistogram::new(self.num_tiles)))
        {
            Entry::ShardedHistogram(h) => h.clone(),
            other => panic!("metric '{name}' already registered as a {}", other.kind()),
        }
    }

    /// Captures the current value of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.lock();
        let mut snap = MetricsSnapshot {
            num_tiles: self.num_tiles,
            counters: BTreeMap::new(),
            per_tile: BTreeMap::new(),
            histograms: BTreeMap::new(),
        };
        for (name, entry) in entries.iter() {
            match entry {
                Entry::Counter(m) => {
                    snap.counters.insert(name.clone(), m.get());
                }
                Entry::Gauge(g) => {
                    snap.counters.insert(name.clone(), g.get());
                }
                Entry::PerTile(v) => {
                    snap.per_tile.insert(name.clone(), v.iter().map(Metric::get).collect());
                }
                Entry::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
                Entry::Sharded(m) => {
                    snap.counters.insert(name.clone(), m.get());
                }
                Entry::ShardedHistogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }

    /// Overwrites every registered metric with the values a snapshot holds
    /// (checkpoint restore). Sharded entries come back folded into lane 0 —
    /// the reported totals are exact, the per-lane attribution is not
    /// preserved. Snapshot names with no registered counterpart are skipped,
    /// so a checkpoint from a run with extra subsystems still restores.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CkptCorrupted`] when the snapshot's tile count or
    /// a metric's kind/shape does not match this registry.
    pub fn restore(&self, snap: &MetricsSnapshot) -> Result<(), SimError> {
        let bad = || SimError::CkptCorrupted { segment: "metrics".to_string() };
        if snap.num_tiles != self.num_tiles {
            return Err(bad());
        }
        let entries = self.entries.lock();
        for (name, &v) in &snap.counters {
            match entries.get(name) {
                Some(Entry::Counter(m)) => {
                    m.take();
                    m.add(v);
                }
                Some(Entry::Gauge(g)) => g.set(v),
                Some(Entry::Sharded(m)) => m.set_folded(v),
                Some(_) => return Err(bad()),
                None => {}
            }
        }
        for (name, lanes) in &snap.per_tile {
            match entries.get(name) {
                Some(Entry::PerTile(v)) => {
                    if v.len() != lanes.len() {
                        return Err(bad());
                    }
                    for (m, &x) in v.iter().zip(lanes) {
                        m.take();
                        m.add(x);
                    }
                }
                Some(_) => return Err(bad()),
                None => {}
            }
        }
        for (name, h) in &snap.histograms {
            let ok = match entries.get(name) {
                Some(Entry::Histogram(hist)) => hist.restore_from(h),
                Some(Entry::ShardedHistogram(hist)) => hist.restore_from(h),
                Some(_) => false,
                None => true,
            };
            if !ok {
                return Err(bad());
            }
        }
        Ok(())
    }
}

/// Point-in-time copy of a whole [`MetricsRegistry`], serializable to the
/// `metrics.json` schema (`graphite.metrics.v1`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Tile count the per-tile lanes are sized for.
    pub num_tiles: usize,
    /// Global counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Per-tile counter lanes by name (`vec[tile]`).
    pub per_tile: BTreeMap<String, Vec<u64>>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Serializes the snapshot as one machine-readable JSON document.
    ///
    /// Keys are emitted in sorted (BTreeMap) order, so the output is
    /// deterministic for a given simulation state.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"schema\": \"graphite.metrics.v1\",\n");
        out.push_str(&format!("  \"num_tiles\": {},\n", self.num_tiles));

        out.push_str("  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {v}", json::quote(name)));
        }
        out.push_str(if self.counters.is_empty() { "},\n" } else { "\n  },\n" });

        out.push_str("  \"per_tile\": {");
        for (i, (name, lanes)) in self.per_tile.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let total: u64 = lanes.iter().sum();
            let tiles: Vec<String> = lanes.iter().map(u64::to_string).collect();
            out.push_str(&format!(
                "\n    {}: {{\"total\": {total}, \"tiles\": [{}]}}",
                json::quote(name),
                tiles.join(", ")
            ));
        }
        out.push_str(if self.per_tile.is_empty() { "},\n" } else { "\n  },\n" });

        out.push_str("  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(le, n)| format!("{{\"le\": {le}, \"count\": {n}}}"))
                .collect();
            out.push_str(&format!(
                "\n    {}: {{\"count\": {}, \"sum\": {}, \"mean\": {:.3}, \"buckets\": [{}]}}",
                json::quote(name),
                h.count,
                h.sum,
                h.mean(),
                buckets.join(", ")
            ));
        }
        out.push_str(if self.histograms.is_empty() { "}\n" } else { "\n  }\n" });

        out.push('}');
        out
    }

    /// Serializes the snapshot into a checkpoint segment payload.
    pub fn encode(&self, out: &mut Enc) {
        out.u64(self.num_tiles as u64);
        out.u64(self.counters.len() as u64);
        for (name, &v) in &self.counters {
            out.str(name);
            out.u64(v);
        }
        out.u64(self.per_tile.len() as u64);
        for (name, lanes) in &self.per_tile {
            out.str(name);
            out.words(lanes);
        }
        out.u64(self.histograms.len() as u64);
        for (name, h) in &self.histograms {
            out.str(name);
            out.u64(h.count);
            out.u64(h.sum);
            out.u64(h.buckets.len() as u64);
            for &(upper, n) in &h.buckets {
                out.u64(upper);
                out.u64(n);
            }
        }
    }

    /// Decodes a snapshot serialized with [`MetricsSnapshot::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CkptTruncated`] or [`SimError::CkptCorrupted`] on
    /// malformed input.
    pub fn decode(dec: &mut Dec<'_>) -> Result<Self, SimError> {
        let bad = || SimError::CkptCorrupted { segment: "metrics".to_string() };
        let num_tiles = usize::try_from(dec.u64()?).map_err(|_| bad())?;
        let mut snap = MetricsSnapshot { num_tiles, ..MetricsSnapshot::default() };
        for _ in 0..dec.u64()? {
            let name = dec.str()?.to_string();
            snap.counters.insert(name, dec.u64()?);
        }
        for _ in 0..dec.u64()? {
            let name = dec.str()?.to_string();
            snap.per_tile.insert(name, dec.words()?);
        }
        for _ in 0..dec.u64()? {
            let name = dec.str()?.to_string();
            let count = dec.u64()?;
            let sum = dec.u64()?;
            let n = dec.u64()?;
            let mut buckets = Vec::with_capacity(usize::try_from(n).unwrap_or(0).min(HIST_BUCKETS));
            for _ in 0..n {
                let upper = dec.u64()?;
                let cnt = dec.u64()?;
                buckets.push((upper, cnt));
            }
            snap.histograms.insert(name, HistogramSnapshot { count, sum, buckets });
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_clone_shares_cell() {
        let m = Metric::new();
        let alias = m.clone();
        m.add(10);
        alias.incr();
        assert_eq!(m.get(), 11);
        assert_eq!(alias.take(), 11);
        assert_eq!(m.get(), 0);
    }

    #[test]
    fn metric_observe_max_is_monotonic() {
        let m = Metric::new();
        m.observe_max(7);
        m.observe_max(3);
        assert_eq!(m.get(), 7);
        m.observe_max(9);
        assert_eq!(m.get(), 9);
    }

    #[test]
    fn gauge_moves_both_ways_and_snapshots_as_counter() {
        let reg = MetricsRegistry::new(1);
        let g = reg.gauge("serve.queue.depth");
        g.add(5);
        g.decr();
        assert_eq!(g.get(), 4);
        g.set(2);
        g.sub(10);
        assert_eq!(g.get(), 0, "sub saturates");
        g.set(3);
        assert_eq!(reg.snapshot().counters["serve.queue.depth"], 3);
        // Registration is idempotent but kind-checked.
        assert_eq!(reg.gauge("serve.queue.depth").get(), 3);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            reg.counter("serve.queue.depth")
        }));
        assert!(r.is_err(), "re-registering a gauge as a counter must panic");
    }

    #[test]
    fn gauge_restores_from_snapshot() {
        let reg = MetricsRegistry::new(1);
        reg.gauge("g").set(42);
        let snap = reg.snapshot();
        reg.gauge("g").set(7);
        reg.restore(&snap).unwrap();
        assert_eq!(reg.gauge("g").get(), 42);
    }

    #[test]
    fn histogram_quantiles_return_bucket_uppers() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().quantile(0.5), 0, "empty histogram");
        for _ in 0..90 {
            h.record(3); // bucket [2, 3]
        }
        for _ in 0..10 {
            h.record(1000); // bucket [512, 1023]
        }
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.0), 3);
        assert_eq!(snap.quantile(0.5), 3);
        assert_eq!(snap.quantile(0.90), 3);
        assert_eq!(snap.quantile(0.95), 1023);
        assert_eq!(snap.quantile(1.0), 1023);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.buckets, vec![(0, 1), (1, 1), (3, 2), (2047, 1), (u64::MAX, 1)]);
    }

    #[test]
    fn sharded_metric_folds_lanes() {
        let m = ShardedMetric::new(3); // rounds up to 4 lanes
        assert_eq!(m.num_lanes(), 4);
        m.add(0, 10);
        m.incr(2);
        m.incr(6); // masks to lane 2
        assert_eq!(m.get(), 12);
        assert_eq!(m.lane_get(2), 2);
        assert_eq!(m.lane_get(1), 0);
    }

    #[test]
    fn sharded_metric_max_fold() {
        let m = ShardedMetric::with_fold(4, LaneFold::Max);
        m.observe_max(0, 7);
        m.observe_max(3, 9);
        m.observe_max(3, 2);
        assert_eq!(m.get(), 9);
        assert_eq!(m.lane_get(0), 7);
    }

    #[test]
    fn sharded_metric_default_accepts_any_lane() {
        let m = ShardedMetric::default();
        m.incr(0);
        m.incr(517);
        assert_eq!(m.get(), 2);
    }

    #[test]
    fn sharded_histogram_matches_plain_histogram() {
        let plain = Histogram::new();
        let sharded = ShardedHistogram::new(4);
        for (lane, v) in [(0u64, 0u64), (1, 1), (2, 2), (3, 3), (0, 1024), (1, u64::MAX)] {
            plain.record(v);
            sharded.record(lane as usize, v);
        }
        assert_eq!(sharded.snapshot(), plain.snapshot());
        assert_eq!(sharded.count(), 6);
        assert_eq!(sharded.lane_count(0), 2);
        assert_eq!(sharded.lane_sum(0), 1024);
        let lane_total: u64 = (0..sharded.num_lanes()).map(|i| sharded.lane_count(i)).sum();
        assert_eq!(lane_total, sharded.snapshot().count);
    }

    #[test]
    fn registry_sharded_entries_fold_into_snapshot() {
        let reg = MetricsRegistry::new(4);
        let c = reg.sharded_counter("mem.ops");
        let c2 = reg.sharded_counter("mem.ops");
        c.add(1, 5);
        c2.add(3, 2);
        let hwm = reg.sharded_max("mem.peak");
        hwm.observe_max(0, 11);
        hwm.observe_max(2, 40);
        let h = reg.sharded_histogram("mem.lat");
        h.record(1, 100);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["mem.ops"], 7);
        assert_eq!(snap.counters["mem.peak"], 40);
        assert_eq!(snap.histograms["mem.lat"].count, 1);
        assert_eq!(snap.histograms["mem.lat"].sum, 100);
        let doc = snap.to_json();
        json::validate(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
    }

    #[test]
    #[should_panic(expected = "already registered as a sharded counter")]
    fn registry_rejects_fold_mismatch() {
        let reg = MetricsRegistry::new(2);
        reg.sharded_counter("clash");
        reg.sharded_max("clash");
    }

    #[test]
    fn registry_is_idempotent() {
        let reg = MetricsRegistry::new(4);
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(2);
        assert_eq!(b.get(), 2);
        let lane1 = reg.per_tile("y");
        let lane2 = reg.per_tile("y");
        lane1[3].incr();
        assert_eq!(lane2[3].get(), 1);
        assert_eq!(lane1.len(), 4);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_rejects_kind_mismatch() {
        let reg = MetricsRegistry::new(1);
        reg.counter("clash");
        reg.histogram("clash");
    }

    #[test]
    fn snapshot_reads_live_values() {
        let reg = MetricsRegistry::new(2);
        let c = reg.counter("total");
        let lane = reg.per_tile("per");
        let h = reg.histogram("lat");
        c.add(5);
        lane[0].add(1);
        lane[1].add(2);
        h.record(100);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["total"], 5);
        assert_eq!(snap.per_tile["per"], vec![1, 2]);
        assert_eq!(snap.histograms["lat"].count, 1);
        // Later increments show up in a fresh snapshot.
        c.incr();
        assert_eq!(reg.snapshot().counters["total"], 6);
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let reg = MetricsRegistry::new(2);
        reg.counter("a.b").add(1);
        reg.per_tile("c\"tricky")[1].add(3);
        reg.histogram("lat").record(9);
        let doc = reg.snapshot().to_json();
        json::validate(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
        assert!(doc.contains("\"graphite.metrics.v1\""));
        assert!(doc.contains("\"total\": 3"));
    }

    #[test]
    fn empty_snapshot_json_is_well_formed() {
        let doc = MetricsRegistry::new(0).snapshot().to_json();
        json::validate(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
    }

    /// A registry exercising every metric kind, for restore tests.
    fn populated_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new(4);
        reg.counter("plain").add(17);
        let pt = reg.per_tile("per");
        pt[1].add(3);
        pt[3].add(9);
        reg.histogram("lat").record(0);
        reg.histogram("lat").record(1000);
        reg.sharded_counter("hot").add(2, 44);
        reg.sharded_max("peak").observe_max(1, 31);
        reg.sharded_histogram("shlat").record(3, 77);
        reg
    }

    #[test]
    fn snapshot_encode_decode_roundtrip() {
        let snap = populated_registry().snapshot();
        let mut e = Enc::new();
        snap.encode(&mut e);
        let buf = e.finish();
        let decoded = MetricsSnapshot::decode(&mut Dec::new(&buf)).unwrap();
        assert_eq!(decoded, snap);
        assert_eq!(decoded.to_json(), snap.to_json());
        // Truncation stays typed.
        assert_eq!(
            MetricsSnapshot::decode(&mut Dec::new(&buf[..buf.len() - 1])).unwrap_err(),
            SimError::CkptTruncated
        );
    }

    #[test]
    fn registry_restore_reproduces_snapshot_byte_for_byte() {
        let snap = populated_registry().snapshot();
        let fresh = populated_registry();
        // Dirty the fresh registry so restore has to overwrite, not just add.
        fresh.counter("plain").add(1);
        fresh.sharded_counter("hot").add(0, 5);
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh.snapshot(), snap);
        assert_eq!(fresh.snapshot().to_json(), snap.to_json());
    }

    #[test]
    fn registry_restore_skips_unknown_names() {
        let mut snap = populated_registry().snapshot();
        snap.counters.insert("from.the.future".to_string(), 99);
        let fresh = populated_registry();
        fresh.restore(&snap).unwrap();
        assert!(!fresh.snapshot().counters.contains_key("from.the.future"));
    }

    #[test]
    fn registry_restore_rejects_mismatches() {
        let reg = populated_registry();
        let mut wrong_tiles = reg.snapshot();
        wrong_tiles.num_tiles = 8;
        assert!(matches!(
            reg.restore(&wrong_tiles).unwrap_err(),
            SimError::CkptCorrupted { segment } if segment == "metrics"
        ));
        let mut wrong_kind = reg.snapshot();
        // "lat" is a histogram in the registry; a counter under that name
        // means the checkpoint came from a different wiring.
        wrong_kind.counters.insert("lat".to_string(), 1);
        assert!(reg.restore(&wrong_kind).is_err());
        let mut wrong_shape = reg.snapshot();
        wrong_shape.per_tile.get_mut("per").unwrap().push(0);
        assert!(reg.restore(&wrong_shape).is_err());
        let mut bad_bucket = reg.snapshot();
        // 6 is not a power-of-two-minus-one boundary.
        bad_bucket.histograms.get_mut("lat").unwrap().buckets = vec![(6, 1)];
        assert!(reg.restore(&bad_bucket).is_err());
    }

    #[test]
    fn quantile_of_empty_snapshot_is_zero() {
        let empty = HistogramSnapshot::default();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(empty.quantile(q), 0);
        }
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn quantile_of_single_bucket_returns_its_bound_for_every_q() {
        let h = Histogram::new();
        for _ in 0..5 {
            h.record(9); // all five land in the (7, 15] bucket
        }
        let snap = h.snapshot();
        assert_eq!(snap.buckets, vec![(15, 5)]);
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), 15, "q={q}");
        }
    }

    #[test]
    fn quantile_extremes_clamp_to_first_and_last_samples() {
        let h = Histogram::new();
        h.record(1); // bucket (.., 1]
        h.record(100); // bucket (63, 127]
        h.record(5000); // bucket (4095, 8191]
        let snap = h.snapshot();
        // q=0 clamps the rank to the first sample, not "before" it.
        assert_eq!(snap.quantile(0.0), 1);
        assert_eq!(snap.quantile(-3.0), 1, "q is clamped into [0, 1]");
        // q=1 is the maximum sample's bucket.
        assert_eq!(snap.quantile(1.0), 8191);
        assert_eq!(snap.quantile(7.0), 8191, "q is clamped into [0, 1]");
        // Interior quantile: rank ceil(0.5*3)=2 → the middle bucket.
        assert_eq!(snap.quantile(0.5), 127);
    }

    #[test]
    fn quantile_reaches_the_open_top_bucket() {
        let h = Histogram::new();
        h.record(2);
        h.record(u64::MAX); // the open +Inf bucket
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.5), 3);
        assert_eq!(snap.quantile(1.0), u64::MAX);
    }
}
