//! Per-tile metrics registry.
//!
//! Subsystems register named counters and histograms once at construction and
//! then update them on hot paths with plain relaxed atomic operations — no
//! locks, no allocation, no name lookup. The registry keeps a shared handle to
//! every registered metric, so a [`MetricsSnapshot`] taken at any time reads
//! the very same atomics the subsystems increment. Reports built from the
//! registry therefore cannot drift from the exported `metrics.json`.
//!
//! Handles are cheap `Arc` clones. A [`Metric`] created via `Default` (or
//! [`Metric::new`]) is *detached*: fully functional but invisible to any
//! registry. That keeps stats structs usable in isolation (unit tests,
//! standalone subsystem construction) while production wiring goes through
//! [`MetricsRegistry::counter`] and friends.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::json;

/// A shared, lock-free `u64` counter.
///
/// Unlike `graphite_base::stats::Counter`, cloning a `Metric` shares the
/// underlying cell instead of snapshotting it — a clone held by the registry
/// observes every increment made through any other clone.
///
/// # Examples
///
/// ```
/// use graphite_trace::Metric;
/// let m = Metric::new();
/// let alias = m.clone();
/// m.add(3);
/// alias.incr();
/// assert_eq!(m.get(), 4);
/// ```
#[derive(Clone, Default, Debug)]
pub struct Metric(Arc<AtomicU64>);

impl Metric {
    /// Creates a detached counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Raises the value to `n` if `n` is larger (used for high-water marks).
    #[inline]
    pub fn observe_max(&self, n: u64) {
        self.0.fetch_max(n, Ordering::Relaxed);
    }

    /// Returns the current value and resets to zero.
    pub fn take(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

const HIST_BUCKETS: usize = 65;

#[derive(Debug)]
struct HistInner {
    /// `buckets[0]` counts zero samples; `buckets[i]` (i ≥ 1) counts samples
    /// whose bit length is `i`, i.e. values in `[2^(i-1), 2^i - 1]`.
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A shared, lock-free log₂-bucketed histogram of `u64` samples.
///
/// Latency distributions in a simulator span orders of magnitude (an L1 hit
/// is ~1 cycle, a cross-machine DRAM fill is thousands), so fixed-width bins
/// waste space while power-of-two bins stay informative at every scale.
///
/// # Examples
///
/// ```
/// use graphite_trace::Histogram;
/// let h = Histogram::new();
/// h.record(0);
/// h.record(5);
/// h.record(6);
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 3);
/// assert_eq!(snap.sum, 11);
/// // 5 and 6 share the [4, 7] bucket.
/// assert_eq!(snap.buckets, vec![(0, 1), (7, 2)]);
/// ```
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Creates a detached histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let idx = (64 - v.leading_zeros()) as usize;
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wraps on overflow, like the counters it joins).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Captures the current distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .0
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_upper(i), n))
            })
            .collect();
        HistogramSnapshot { count: self.count(), sum: self.sum(), buckets }
    }
}

/// Inclusive upper bound of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// Point-in-time copy of one [`Histogram`]'s distribution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// `(inclusive_upper_bound, count)` for each non-empty bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Debug)]
enum Entry {
    Counter(Metric),
    PerTile(Vec<Metric>),
    Histogram(Histogram),
}

impl Entry {
    fn kind(&self) -> &'static str {
        match self {
            Entry::Counter(_) => "counter",
            Entry::PerTile(_) => "per-tile counter",
            Entry::Histogram(_) => "histogram",
        }
    }
}

/// Registry of every named metric a simulation exposes.
///
/// Registration is idempotent: asking twice for the same name (with the same
/// kind) returns handles to the same cells, so independent subsystems may
/// share a metric. Asking for an existing name with a *different* kind is a
/// wiring bug and panics.
///
/// # Examples
///
/// ```
/// use graphite_trace::MetricsRegistry;
/// let reg = MetricsRegistry::new(2);
/// let sends = reg.counter("net.sends");
/// sends.add(5);
/// let per_tile = reg.per_tile("mem.accesses");
/// per_tile[1].incr();
/// let snap = reg.snapshot();
/// assert_eq!(snap.counters["net.sends"], 5);
/// assert_eq!(snap.per_tile["mem.accesses"], vec![0, 1]);
/// ```
#[derive(Debug)]
pub struct MetricsRegistry {
    num_tiles: usize,
    entries: Mutex<BTreeMap<String, Entry>>,
}

impl MetricsRegistry {
    /// Creates an empty registry for a target with `num_tiles` tiles.
    pub fn new(num_tiles: usize) -> Self {
        MetricsRegistry { num_tiles, entries: Mutex::new(BTreeMap::new()) }
    }

    /// Number of tiles every per-tile metric is sized for.
    pub fn num_tiles(&self) -> usize {
        self.num_tiles
    }

    /// Returns the global counter named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Metric {
        let mut entries = self.entries.lock();
        match entries.entry(name.to_string()).or_insert_with(|| Entry::Counter(Metric::new())) {
            Entry::Counter(m) => m.clone(),
            other => panic!("metric '{name}' already registered as a {}", other.kind()),
        }
    }

    /// Returns the per-tile counter lane named `name` (one [`Metric`] per
    /// tile), registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn per_tile(&self, name: &str) -> Vec<Metric> {
        let mut entries = self.entries.lock();
        match entries
            .entry(name.to_string())
            .or_insert_with(|| Entry::PerTile((0..self.num_tiles).map(|_| Metric::new()).collect()))
        {
            Entry::PerTile(v) => v.clone(),
            other => panic!("metric '{name}' already registered as a {}", other.kind()),
        }
    }

    /// Returns the histogram named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut entries = self.entries.lock();
        match entries.entry(name.to_string()).or_insert_with(|| Entry::Histogram(Histogram::new()))
        {
            Entry::Histogram(h) => h.clone(),
            other => panic!("metric '{name}' already registered as a {}", other.kind()),
        }
    }

    /// Captures the current value of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.lock();
        let mut snap = MetricsSnapshot {
            num_tiles: self.num_tiles,
            counters: BTreeMap::new(),
            per_tile: BTreeMap::new(),
            histograms: BTreeMap::new(),
        };
        for (name, entry) in entries.iter() {
            match entry {
                Entry::Counter(m) => {
                    snap.counters.insert(name.clone(), m.get());
                }
                Entry::PerTile(v) => {
                    snap.per_tile.insert(name.clone(), v.iter().map(Metric::get).collect());
                }
                Entry::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

/// Point-in-time copy of a whole [`MetricsRegistry`], serializable to the
/// `metrics.json` schema (`graphite.metrics.v1`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Tile count the per-tile lanes are sized for.
    pub num_tiles: usize,
    /// Global counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Per-tile counter lanes by name (`vec[tile]`).
    pub per_tile: BTreeMap<String, Vec<u64>>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Serializes the snapshot as one machine-readable JSON document.
    ///
    /// Keys are emitted in sorted (BTreeMap) order, so the output is
    /// deterministic for a given simulation state.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"schema\": \"graphite.metrics.v1\",\n");
        out.push_str(&format!("  \"num_tiles\": {},\n", self.num_tiles));

        out.push_str("  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {v}", json::quote(name)));
        }
        out.push_str(if self.counters.is_empty() { "},\n" } else { "\n  },\n" });

        out.push_str("  \"per_tile\": {");
        for (i, (name, lanes)) in self.per_tile.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let total: u64 = lanes.iter().sum();
            let tiles: Vec<String> = lanes.iter().map(u64::to_string).collect();
            out.push_str(&format!(
                "\n    {}: {{\"total\": {total}, \"tiles\": [{}]}}",
                json::quote(name),
                tiles.join(", ")
            ));
        }
        out.push_str(if self.per_tile.is_empty() { "},\n" } else { "\n  },\n" });

        out.push_str("  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(le, n)| format!("{{\"le\": {le}, \"count\": {n}}}"))
                .collect();
            out.push_str(&format!(
                "\n    {}: {{\"count\": {}, \"sum\": {}, \"mean\": {:.3}, \"buckets\": [{}]}}",
                json::quote(name),
                h.count,
                h.sum,
                h.mean(),
                buckets.join(", ")
            ));
        }
        out.push_str(if self.histograms.is_empty() { "}\n" } else { "\n  }\n" });

        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_clone_shares_cell() {
        let m = Metric::new();
        let alias = m.clone();
        m.add(10);
        alias.incr();
        assert_eq!(m.get(), 11);
        assert_eq!(alias.take(), 11);
        assert_eq!(m.get(), 0);
    }

    #[test]
    fn metric_observe_max_is_monotonic() {
        let m = Metric::new();
        m.observe_max(7);
        m.observe_max(3);
        assert_eq!(m.get(), 7);
        m.observe_max(9);
        assert_eq!(m.get(), 9);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.buckets, vec![(0, 1), (1, 1), (3, 2), (2047, 1), (u64::MAX, 1)]);
    }

    #[test]
    fn registry_is_idempotent() {
        let reg = MetricsRegistry::new(4);
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(2);
        assert_eq!(b.get(), 2);
        let lane1 = reg.per_tile("y");
        let lane2 = reg.per_tile("y");
        lane1[3].incr();
        assert_eq!(lane2[3].get(), 1);
        assert_eq!(lane1.len(), 4);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_rejects_kind_mismatch() {
        let reg = MetricsRegistry::new(1);
        reg.counter("clash");
        reg.histogram("clash");
    }

    #[test]
    fn snapshot_reads_live_values() {
        let reg = MetricsRegistry::new(2);
        let c = reg.counter("total");
        let lane = reg.per_tile("per");
        let h = reg.histogram("lat");
        c.add(5);
        lane[0].add(1);
        lane[1].add(2);
        h.record(100);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["total"], 5);
        assert_eq!(snap.per_tile["per"], vec![1, 2]);
        assert_eq!(snap.histograms["lat"].count, 1);
        // Later increments show up in a fresh snapshot.
        c.incr();
        assert_eq!(reg.snapshot().counters["total"], 6);
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let reg = MetricsRegistry::new(2);
        reg.counter("a.b").add(1);
        reg.per_tile("c\"tricky")[1].add(3);
        reg.histogram("lat").record(9);
        let doc = reg.snapshot().to_json();
        json::validate(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
        assert!(doc.contains("\"graphite.metrics.v1\""));
        assert!(doc.contains("\"total\": 3"));
    }

    #[test]
    fn empty_snapshot_json_is_well_formed() {
        let doc = MetricsRegistry::new(0).snapshot().to_json();
        json::validate(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
    }
}
