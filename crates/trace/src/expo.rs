//! Prometheus text exposition (format version 0.0.4).
//!
//! Two halves, used together by `graphite-serve` and its CI smoke job:
//!
//! * [`PromText`] — a small builder that renders metric families: `# TYPE`
//!   headers, labeled samples, and histograms expanded into the *cumulative*
//!   `_bucket{le="…"}` / `_sum` / `_count` series the format requires. The
//!   repo's log₂ [`HistogramSnapshot`] buckets carry inclusive upper bounds,
//!   which map directly onto `le` (less-or-equal) boundaries; the open
//!   top bucket folds into `le="+Inf"`.
//! * [`validate`] — a dependency-free checker for the invariants scrapers
//!   rely on: every sample belongs to a declared family, histogram bucket
//!   series are cumulative and monotone, `_count` equals the `+Inf` bucket,
//!   and `_sum`/`_count` agree with the bucket series. Tests and the
//!   `obs-smoke` CI job run it against live `/metrics` output.
//!
//! Nothing here depends on the rest of the crate beyond
//! [`HistogramSnapshot`], so any subsystem with a registry snapshot can
//! expose itself.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use crate::metrics::HistogramSnapshot;

/// Maps an internal dotted metric name (`serve.queue_wait_us`) onto the
/// Prometheus name charset `[a-zA-Z_:][a-zA-Z0-9_:]*`: every other byte
/// becomes `_`, and a leading digit gets a `_` prefix.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok || c.is_ascii_digit() { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
pub fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes `# HELP` text: `\` → `\\`, newline → `\n` (the format's comment
/// escaping; quotes are legal in help text and stay as-is).
pub fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn label_block(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    format!("{{{}}}", inner.join(","))
}

fn label_block_with_le(labels: &[(&str, &str)], le: &str) -> String {
    let mut inner: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    inner.push(format!("le=\"{le}\""));
    format!("{{{}}}", inner.join(","))
}

/// Builder for one exposition document.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
    typed: BTreeSet<String>,
}

impl PromText {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a family: `# HELP` + `# TYPE`. Call once per family, before
    /// its samples; repeated declarations are ignored (first kind wins).
    pub fn family(&mut self, name: &str, kind: &str, help: &str) {
        if !self.typed.insert(name.to_owned()) {
            return;
        }
        let _ = writeln!(self.out, "# HELP {name} {}", escape_help(help));
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Emits one integer sample.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        let _ = writeln!(self.out, "{name}{} {value}", label_block(labels));
    }

    /// Emits one float sample (gauges derived from wall-clock ages).
    pub fn sample_f64(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let _ = writeln!(self.out, "{name}{} {value}", label_block(labels));
    }

    /// Expands a histogram snapshot into cumulative `_bucket` series plus
    /// `_sum` and `_count`. The snapshot's sparse per-bucket counts become a
    /// running total; the `u64::MAX` bucket (and the total) land on
    /// `le="+Inf"`.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], h: &HistogramSnapshot) {
        let mut cum = 0u64;
        for &(upper, n) in &h.buckets {
            cum += n;
            if upper == u64::MAX {
                break; // the open top bucket is exactly the +Inf series
            }
            let block = label_block_with_le(labels, &upper.to_string());
            let _ = writeln!(self.out, "{name}_bucket{block} {cum}");
        }
        let block = label_block_with_le(labels, "+Inf");
        let _ = writeln!(self.out, "{name}_bucket{block} {}", h.count);
        let _ = writeln!(self.out, "{name}_sum{} {}", label_block(labels), h.sum);
        let _ = writeln!(self.out, "{name}_count{} {}", label_block(labels), h.count);
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Label names use a narrower charset than metric names: no colon.
fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// One parsed sample line.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

fn parse_labels(s: &str, line_no: usize) -> Result<Vec<(String, String)>, String> {
    let err = |m: &str| format!("line {line_no}: {m}");
    let mut labels = Vec::new();
    let mut rest = s;
    loop {
        rest = rest.trim_start_matches(',');
        if rest.is_empty() {
            return Ok(labels);
        }
        let eq = rest.find('=').ok_or_else(|| err("label without '='"))?;
        let key = rest[..eq].trim().to_owned();
        if !valid_label_name(&key) {
            return Err(err(&format!("bad label name {key:?}")));
        }
        rest = rest[eq + 1..].strip_prefix('"').ok_or_else(|| err("label value not quoted"))?;
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let close = loop {
            let (i, c) = chars.next().ok_or_else(|| err("unterminated label value"))?;
            match c {
                '"' => break i,
                '\\' => match chars.next().ok_or_else(|| err("dangling escape"))?.1 {
                    'n' => value.push('\n'),
                    e @ ('\\' | '"') => value.push(e),
                    e => return Err(err(&format!("bad escape \\{e}"))),
                },
                _ => value.push(c),
            }
        };
        labels.push((key, value));
        rest = &rest[close + 1..];
        // Only a separator (or the block end) may follow the closing quote;
        // trailing junk means an unescaped quote ended the value early.
        if !rest.is_empty() && !rest.starts_with(',') {
            return Err(err("expected ',' after label value (unescaped '\"'?)"));
        }
    }
}

fn parse_sample(line: &str, line_no: usize) -> Result<Sample, String> {
    let err = |m: &str| format!("line {line_no}: {m} in {line:?}");
    let (name_and_labels, value_str) = match line.find('{') {
        Some(open) => {
            let close = line.rfind('}').ok_or_else(|| err("unclosed label block"))?;
            (
                (&line[..open], Some(&line[open + 1..close])),
                line[close + 1..].split_whitespace().next().unwrap_or(""),
            )
        }
        None => {
            let mut parts = line.split_whitespace();
            ((parts.next().unwrap_or(""), None), parts.next().unwrap_or(""))
        }
    };
    let (name, raw_labels) = name_and_labels;
    let name = name.trim().to_owned();
    if !valid_name(&name) {
        return Err(err(&format!("bad metric name {name:?}")));
    }
    let labels = match raw_labels {
        Some(s) => parse_labels(s, line_no)?,
        None => Vec::new(),
    };
    let value = match value_str {
        "+Inf" | "Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v.parse::<f64>().map_err(|_| err(&format!("bad sample value {v:?}")))?,
    };
    Ok(Sample { name, labels, value })
}

/// Canonical key for a label set (order-independent), optionally dropping
/// `le` so all of a histogram's bucket series group together. Length-prefixed
/// so crafted values containing the separators cannot collide.
fn label_key(labels: &[(String, String)], drop_le: bool) -> String {
    let mut pairs: Vec<&(String, String)> =
        labels.iter().filter(|(k, _)| !(drop_le && k == "le")).collect();
    pairs.sort();
    pairs.iter().map(|(k, v)| format!("{}:{k}={}:{v};", k.len(), v.len())).collect()
}

/// Per-(histogram family, label set) accumulation for the invariant checks.
#[derive(Default)]
struct HistSeries {
    /// `(le, cumulative count)` in document order.
    buckets: Vec<(f64, f64)>,
    sum: Option<f64>,
    count: Option<f64>,
}

/// Validates a Prometheus text exposition document.
///
/// Checks the invariants a scraper depends on: parseable sample lines, every
/// family declared by exactly one `# TYPE` before use, no duplicate samples,
/// and for each histogram series: ascending `le` bounds, monotone cumulative
/// bucket counts, a terminal `+Inf` bucket equal to `_count`, and a `_sum`
/// no smaller than what the closed buckets imply.
///
/// # Errors
///
/// A human-readable message naming the first offending line or family.
pub fn validate(text: &str) -> Result<(), String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut seen_samples: BTreeSet<String> = BTreeSet::new();
    let mut hists: BTreeMap<(String, String), HistSeries> = BTreeMap::new();

    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(comment) = trimmed.strip_prefix('#') {
            let mut parts = comment.split_whitespace();
            if parts.next() == Some("TYPE") {
                let name = parts.next().unwrap_or("").to_owned();
                let kind = parts.next().unwrap_or("").to_owned();
                if !valid_name(&name) {
                    return Err(format!("line {line_no}: bad TYPE name {name:?}"));
                }
                if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind.as_str())
                {
                    return Err(format!("line {line_no}: unknown TYPE {kind:?}"));
                }
                if types.insert(name.clone(), kind).is_some() {
                    return Err(format!("line {line_no}: duplicate TYPE for {name}"));
                }
            }
            continue;
        }

        let s = parse_sample(trimmed, line_no)?;
        let full_key = format!("{} {}", s.name, label_key(&s.labels, false));
        if !seen_samples.insert(full_key) {
            return Err(format!("line {line_no}: duplicate sample {}", s.name));
        }

        // Resolve the sample to its declared family: histogram series use
        // suffixed names, everything else matches the family name directly.
        let hist_base = ["_bucket", "_sum", "_count"].iter().find_map(|suffix| {
            let base = s.name.strip_suffix(suffix)?;
            (types.get(base).map(String::as_str) == Some("histogram"))
                .then(|| (base.to_owned(), *suffix))
        });
        match hist_base {
            Some((base, suffix)) => {
                let key = (base, label_key(&s.labels, true));
                let series = hists.entry(key).or_default();
                match suffix {
                    "_bucket" => {
                        let le = s
                            .labels
                            .iter()
                            .find(|(k, _)| k == "le")
                            .ok_or_else(|| format!("line {line_no}: _bucket without le"))?;
                        let bound = match le.1.as_str() {
                            "+Inf" => f64::INFINITY,
                            v => v
                                .parse::<f64>()
                                .map_err(|_| format!("line {line_no}: bad le {v:?}"))?,
                        };
                        series.buckets.push((bound, s.value));
                    }
                    "_sum" => series.sum = Some(s.value),
                    _ => series.count = Some(s.value),
                }
            }
            None => {
                if !types.contains_key(&s.name) {
                    return Err(format!("line {line_no}: sample {} has no # TYPE", s.name));
                }
                if types[&s.name] == "counter" && s.value < 0.0 {
                    return Err(format!("line {line_no}: negative counter {}", s.name));
                }
            }
        }
    }

    for ((base, labels), series) in &hists {
        let what = format!("histogram {base}{{{labels}}}");
        if series.buckets.is_empty() {
            return Err(format!("{what}: no _bucket series"));
        }
        for pair in series.buckets.windows(2) {
            if pair[1].0 <= pair[0].0 {
                return Err(format!("{what}: le bounds not ascending"));
            }
            if pair[1].1 < pair[0].1 {
                return Err(format!("{what}: cumulative bucket counts decrease"));
            }
        }
        let (top_le, top_count) = *series.buckets.last().expect("non-empty");
        if top_le != f64::INFINITY {
            return Err(format!("{what}: missing le=\"+Inf\" bucket"));
        }
        let count = series.count.ok_or_else(|| format!("{what}: missing _count"))?;
        let sum = series.sum.ok_or_else(|| format!("{what}: missing _sum"))?;
        if count != top_count {
            return Err(format!("{what}: _count {count} != +Inf bucket {top_count}"));
        }
        if sum < 0.0 || (count == 0.0 && sum != 0.0) {
            return Err(format!("{what}: _sum {sum} inconsistent with _count {count}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    #[test]
    fn sanitizes_names_and_escapes_labels() {
        assert_eq!(sanitize_name("serve.queue_wait_us"), "serve_queue_wait_us");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn rendered_document_passes_validation() {
        let h = Histogram::new();
        for v in [0, 1, 3, 3, 900, u64::MAX] {
            h.record(v);
        }
        let mut doc = PromText::new();
        doc.family("jobs_total", "counter", "jobs accepted");
        doc.sample("jobs_total", &[("tenant", "acme")], 7);
        doc.sample("jobs_total", &[("tenant", "glo\"bex")], 2);
        doc.family("queue_depth", "gauge", "queued jobs");
        doc.sample("queue_depth", &[], 3);
        doc.family("wait_us", "histogram", "queue wait");
        doc.histogram("wait_us", &[("tenant", "acme")], &h.snapshot());
        let text = doc.finish();
        validate(&text).unwrap();
        assert!(text.contains("wait_us_bucket{tenant=\"acme\",le=\"+Inf\"} 6"));
        assert!(text.contains("wait_us_count{tenant=\"acme\"} 6"));
        // The u64::MAX bucket folds into +Inf rather than printing its bound.
        assert!(!text.contains(&u64::MAX.to_string()));
    }

    #[test]
    fn histogram_series_is_cumulative() {
        let h = Histogram::new();
        for v in [1u64, 2, 2, 8] {
            h.record(v);
        }
        let mut doc = PromText::new();
        doc.family("w", "histogram", "w");
        doc.histogram("w", &[], &h.snapshot());
        let text = doc.finish();
        assert!(text.contains("w_bucket{le=\"1\"} 1"), "{text}");
        assert!(text.contains("w_bucket{le=\"3\"} 3"), "{text}");
        assert!(text.contains("w_bucket{le=\"15\"} 4"), "{text}");
        assert!(text.contains("w_bucket{le=\"+Inf\"} 4"), "{text}");
        validate(&text).unwrap();
    }

    #[test]
    fn validator_rejects_broken_documents() {
        // Sample with no TYPE.
        assert!(validate("x 1\n").is_err());
        // Non-monotone cumulative buckets.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
                   h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n";
        assert!(validate(bad).unwrap_err().contains("decrease"));
        // Missing +Inf.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 9\nh_count 5\n";
        assert!(validate(bad).unwrap_err().contains("+Inf"));
        // _count disagrees with the top bucket.
        let bad = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 4\n";
        assert!(validate(bad).unwrap_err().contains("_count"));
        // Missing _sum.
        let bad = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n";
        assert!(validate(bad).unwrap_err().contains("_sum"));
        // Duplicate sample.
        let bad = "# TYPE c counter\nc{t=\"a\"} 1\nc{t=\"a\"} 2\n";
        assert!(validate(bad).unwrap_err().contains("duplicate"));
        // Well-formed documents still pass.
        validate("# TYPE c counter\nc{t=\"a\"} 1\nc{t=\"b\"} 2\n").unwrap();
    }

    #[test]
    fn validator_handles_escaped_label_values() {
        let mut doc = PromText::new();
        doc.family("c", "counter", "c");
        doc.sample("c", &[("t", "a\"b\\c\nd")], 1);
        validate(&doc.finish()).unwrap();
    }

    #[test]
    fn validator_rejects_unescaped_label_values() {
        // A raw '"' inside a value ends it early and leaves junk before the
        // next separator.
        let bad = "# TYPE c counter\nc{t=\"a\"b\"} 1\n";
        assert!(validate(bad).unwrap_err().contains("after label value"));
        // A raw newline splits the sample line: the value never terminates.
        let bad = "# TYPE c counter\nc{t=\"a\nb\"} 1\n";
        assert!(validate(bad).is_err());
        // A dangling backslash at end of value.
        let bad = "# TYPE c counter\nc{t=\"a\\\"} 1\n";
        assert!(validate(bad).is_err());
        // Unknown escape sequences are not silently accepted.
        let bad = "# TYPE c counter\nc{t=\"a\\t\"} 1\n";
        assert!(validate(bad).unwrap_err().contains("bad escape"));
    }

    #[test]
    fn validator_rejects_colons_in_label_names() {
        // Metric names may contain ':', label names may not.
        validate("# TYPE a:b counter\na:b 1\n").unwrap();
        let bad = "# TYPE c counter\nc{t:x=\"a\"} 1\n";
        assert!(validate(bad).unwrap_err().contains("bad label name"));
    }

    #[test]
    fn crafted_label_values_do_not_collide_as_duplicates() {
        // Same flattened text under naive "k=v;" joining, distinct label
        // sets: must both be accepted, not flagged as duplicates.
        let doc = "# TYPE c counter\nc{a=\"x;b=y\"} 1\nc{a=\"x\",b=\"y\"} 2\n";
        validate(doc).unwrap();
    }

    #[test]
    fn help_text_is_escaped() {
        let mut doc = PromText::new();
        doc.family("c", "counter", "line one\nwith \\ backslash");
        doc.sample("c", &[], 1);
        let text = doc.finish();
        assert!(text.contains("# HELP c line one\\nwith \\\\ backslash"), "{text}");
        validate(&text).unwrap();
    }
}
