//! Host package for the workspace-level `examples/` directory; see the
//! `[[example]]` entries in this crate's manifest. Build and run one with
//! `cargo run -p graphite-examples --example quickstart`.
