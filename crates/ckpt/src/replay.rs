//! Deterministic record/replay of a run's nondeterministic inputs.
//!
//! A lax-synchronized simulation is deterministic *except* for a handful of
//! inputs: guest-visible RNG draws, LaxP2P random-partner choices, and the
//! arrival order of user messages at receive points. [`ReplayLog`] records
//! those as per-stream sequences of `u64`s during a run; a later run in
//! replay mode consumes the same sequences, pinning every choice and making
//! the divergent run reproducible for debugging.

use std::collections::BTreeMap;

use graphite_base::SimError;
use parking_lot::Mutex;

use crate::codec::{Dec, Enc};

/// Well-known replay stream identifiers.
pub mod stream {
    /// Guest-visible RNG draws (`Ctx::rand_u64`).
    pub const GUEST_RNG: u64 = 1;
    /// LaxP2P random partner choices.
    pub const P2P_PARTNER: u64 = 2;
    /// Source tile of each user message accepted by a receiving tile.
    pub fn msg_arrival(tile: u32) -> u64 {
        0x1_0000 + tile as u64
    }
}

/// What a [`ReplayLog`] does with the values flowing through it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayMode {
    /// Pass-through: nothing recorded, nothing replayed.
    Off,
    /// Append every value to its stream.
    Record,
    /// Serve recorded values back in order; fall through to the live value
    /// when a stream runs dry (the log then keeps recording the tail).
    Replay,
}

#[derive(Debug, Default)]
struct Stream {
    values: Vec<u64>,
    cursor: usize,
}

#[derive(Debug)]
struct Inner {
    mode: ReplayMode,
    streams: BTreeMap<u64, Stream>,
}

/// A thread-safe log of nondeterministic choices, keyed by stream.
///
/// # Examples
///
/// ```
/// use graphite_ckpt::{stream, ReplayLog};
/// let log = ReplayLog::recording();
/// assert_eq!(log.record_or_replay_u64(stream::GUEST_RNG, || 7), 7);
/// let replayed = ReplayLog::replay_from(&log.save_bytes()).unwrap();
/// // The generator is ignored: the recorded value wins.
/// assert_eq!(replayed.record_or_replay_u64(stream::GUEST_RNG, || 999), 7);
/// ```
#[derive(Debug)]
pub struct ReplayLog {
    inner: Mutex<Inner>,
}

impl ReplayLog {
    fn with_mode(mode: ReplayMode) -> Self {
        ReplayLog { inner: Mutex::new(Inner { mode, streams: BTreeMap::new() }) }
    }

    /// A disabled log: every call is pass-through.
    pub fn off() -> Self {
        Self::with_mode(ReplayMode::Off)
    }

    /// An empty log in record mode.
    pub fn recording() -> Self {
        Self::with_mode(ReplayMode::Record)
    }

    /// Loads serialized log contents, rewinds every stream, and enters
    /// replay mode.
    ///
    /// # Errors
    ///
    /// Returns the decode error of [`ReplayLog::load`].
    pub fn replay_from(bytes: &[u8]) -> Result<Self, SimError> {
        let log = Self::load(&mut Dec::new(bytes))?;
        {
            let mut inner = log.inner.lock();
            inner.mode = ReplayMode::Replay;
            for s in inner.streams.values_mut() {
                s.cursor = 0;
            }
        }
        Ok(log)
    }

    /// The current mode.
    pub fn mode(&self) -> ReplayMode {
        self.inner.lock().mode
    }

    /// Routes one nondeterministic `u64` through the log: records `gen()`'s
    /// value (record mode), serves the next recorded value and ignores
    /// `gen()` (replay mode, until the stream runs dry), or just returns
    /// `gen()` (off).
    pub fn record_or_replay_u64(&self, stream: u64, gen: impl FnOnce() -> u64) -> u64 {
        let mut inner = self.inner.lock();
        match inner.mode {
            ReplayMode::Off => gen(),
            ReplayMode::Record => {
                let v = gen();
                inner.streams.entry(stream).or_default().values.push(v);
                v
            }
            ReplayMode::Replay => {
                let s = inner.streams.entry(stream).or_default();
                if s.cursor < s.values.len() {
                    let v = s.values[s.cursor];
                    s.cursor += 1;
                    v
                } else {
                    // Ran past the recording: take the live value and keep
                    // extending the log so a checkpointed resume stays
                    // replayable.
                    let v = gen();
                    s.values.push(v);
                    s.cursor = s.values.len();
                    v
                }
            }
        }
    }

    /// Records a value that was *observed* rather than generated (e.g. the
    /// source tile of a received message). No-op unless recording.
    pub fn record_u64(&self, stream: u64, v: u64) {
        let mut inner = self.inner.lock();
        if inner.mode == ReplayMode::Record {
            inner.streams.entry(stream).or_default().values.push(v);
        }
    }

    /// In replay mode, the next recorded value of a stream (advancing its
    /// cursor); `None` when off, recording, or past the end.
    pub fn replay_u64(&self, stream: u64) -> Option<u64> {
        let mut inner = self.inner.lock();
        if inner.mode != ReplayMode::Replay {
            return None;
        }
        let s = inner.streams.get_mut(&stream)?;
        if s.cursor < s.values.len() {
            let v = s.values[s.cursor];
            s.cursor += 1;
            Some(v)
        } else {
            None
        }
    }

    /// Serializes mode, streams, values, and cursors. Stream values are
    /// zigzag-delta varint encoded ([`Enc::delta_words`]): arrival-order
    /// timestamps are monotone and partner picks are small, so both shrink
    /// to a byte or two per entry.
    pub fn save(&self, out: &mut Enc) {
        let inner = self.inner.lock();
        out.u8(match inner.mode {
            ReplayMode::Off => 0,
            ReplayMode::Record => 1,
            ReplayMode::Replay => 2,
        });
        out.varint(inner.streams.len() as u64);
        for (&id, s) in &inner.streams {
            out.u64(id);
            out.varint(s.cursor as u64);
            out.delta_words(&s.values);
        }
    }

    /// Serializes to a standalone byte buffer.
    pub fn save_bytes(&self) -> Vec<u8> {
        let mut e = Enc::new();
        self.save(&mut e);
        e.finish()
    }

    /// Decodes a log saved with [`ReplayLog::save`], preserving mode and
    /// cursors (so a checkpointed run resumes mid-stream).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CkptTruncated`] or [`SimError::CkptCorrupted`]
    /// on malformed input.
    pub fn load(dec: &mut Dec<'_>) -> Result<Self, SimError> {
        let corrupted = || SimError::CkptCorrupted { segment: "replay".to_string() };
        let mode = match dec.u8()? {
            0 => ReplayMode::Off,
            1 => ReplayMode::Record,
            2 => ReplayMode::Replay,
            _ => return Err(corrupted()),
        };
        let n = dec.varint()?;
        let mut streams = BTreeMap::new();
        for _ in 0..n {
            let id = dec.u64()?;
            let cursor = usize::try_from(dec.varint()?).map_err(|_| corrupted())?;
            let values = dec.delta_words()?;
            if cursor > values.len() {
                return Err(corrupted());
            }
            streams.insert(id, Stream { values, cursor });
        }
        Ok(ReplayLog { inner: Mutex::new(Inner { mode, streams }) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_passthrough() {
        let log = ReplayLog::off();
        assert_eq!(log.mode(), ReplayMode::Off);
        assert_eq!(log.record_or_replay_u64(stream::GUEST_RNG, || 5), 5);
        assert_eq!(log.replay_u64(stream::GUEST_RNG), None);
        // Nothing was stored.
        let reloaded = ReplayLog::load(&mut Dec::new(&log.save_bytes())).unwrap();
        assert_eq!(reloaded.replay_u64(stream::GUEST_RNG), None);
    }

    #[test]
    fn record_then_replay_pins_choices() {
        let log = ReplayLog::recording();
        for v in [3u64, 1, 4, 1, 5] {
            log.record_or_replay_u64(stream::P2P_PARTNER, || v);
        }
        log.record_u64(stream::msg_arrival(2), 7);
        let replayed = ReplayLog::replay_from(&log.save_bytes()).unwrap();
        assert_eq!(replayed.mode(), ReplayMode::Replay);
        for v in [3u64, 1, 4, 1, 5] {
            assert_eq!(replayed.record_or_replay_u64(stream::P2P_PARTNER, || 0), v);
        }
        assert_eq!(replayed.replay_u64(stream::msg_arrival(2)), Some(7));
        assert_eq!(replayed.replay_u64(stream::msg_arrival(2)), None, "stream exhausted");
    }

    #[test]
    fn replay_past_end_falls_through_and_extends() {
        let log = ReplayLog::recording();
        log.record_or_replay_u64(stream::GUEST_RNG, || 10);
        let replayed = ReplayLog::replay_from(&log.save_bytes()).unwrap();
        assert_eq!(replayed.record_or_replay_u64(stream::GUEST_RNG, || 99), 10);
        assert_eq!(replayed.record_or_replay_u64(stream::GUEST_RNG, || 99), 99, "dry: live value");
        // The tail was appended, so a re-save replays both.
        let again = ReplayLog::replay_from(&replayed.save_bytes()).unwrap();
        assert_eq!(again.record_or_replay_u64(stream::GUEST_RNG, || 0), 10);
        assert_eq!(again.record_or_replay_u64(stream::GUEST_RNG, || 0), 99);
    }

    #[test]
    fn save_preserves_cursor_mid_stream() {
        let log = ReplayLog::recording();
        log.record_or_replay_u64(stream::GUEST_RNG, || 1);
        log.record_or_replay_u64(stream::GUEST_RNG, || 2);
        let replayed = ReplayLog::replay_from(&log.save_bytes()).unwrap();
        assert_eq!(replayed.record_or_replay_u64(stream::GUEST_RNG, || 0), 1);
        // A checkpoint taken here must resume at value 2, not restart.
        let resumed = ReplayLog::load(&mut Dec::new(&replayed.save_bytes())).unwrap();
        assert_eq!(resumed.record_or_replay_u64(stream::GUEST_RNG, || 0), 2);
    }

    #[test]
    fn malformed_log_is_typed() {
        assert!(matches!(
            ReplayLog::load(&mut Dec::new(&[9])).unwrap_err(),
            SimError::CkptCorrupted { .. }
        ));
        assert_eq!(ReplayLog::load(&mut Dec::new(&[])).unwrap_err(), SimError::CkptTruncated);
        // Cursor beyond the stream length.
        let mut e = Enc::new();
        e.u8(1);
        e.varint(1);
        e.u64(stream::GUEST_RNG);
        e.varint(5); // cursor 5
        e.delta_words(&[1, 2]); // only 2 values
        assert!(matches!(
            ReplayLog::load(&mut Dec::new(&e.finish())).unwrap_err(),
            SimError::CkptCorrupted { .. }
        ));
    }
}
