//! Checkpoint/restore and deterministic replay for the simulator.
//!
//! Graphite targets long-running simulations distributed over commodity
//! hosts (paper §1, §3), where losing a process throws away hours of work.
//! This crate provides the robustness layer: a versioned, checksummed
//! on-disk snapshot format (`graphite.ckpt.v4`) that stateful subsystems
//! serialize themselves into through the [`Checkpointable`] trait, and a
//! [`ReplayLog`] that records the nondeterministic inputs of a run (guest
//! RNG draws, LaxP2P partner choices, message-arrival order) so a crashed
//! or divergent run can be replayed bit-identically for debugging.
//!
//! The crate deliberately depends only on `graphite-base`: subsystem crates
//! (memory, network, sync, core) depend on it to implement their own
//! serialization, and the `graphite` core crate orchestrates whole-simulation
//! save/restore on top.
//!
//! # File format
//!
//! ```text
//! magic    8 bytes  b"GRAPHCKP"
//! version  u32 LE   (currently 1)
//! count    u32 LE   number of segments
//! directory, per segment:
//!     name_len u32 LE, name (UTF-8),
//!     payload_len u64 LE, fnv1a64(payload) u64 LE
//! payloads, concatenated in directory order
//! ```
//!
//! Every integer in the format (and in segment payloads encoded with
//! [`Enc`]/[`Dec`]) is little-endian. Readers validate the magic, version,
//! declared lengths, and per-segment checksums before any payload is
//! interpreted; malformed inputs surface as typed
//! [`SimError`](graphite_base::SimError)s, never panics.

mod codec;
mod format;
mod replay;

use graphite_base::SimError;

pub use codec::{Dec, Enc};
pub use format::{fnv1a64, CkptReader, CkptWriter, CKPT_MAGIC, CKPT_VERSION};
pub use replay::{stream, ReplayLog, ReplayMode};

/// A subsystem whose state can be captured into a checkpoint segment and
/// later restored into a freshly constructed instance of the same shape.
///
/// `restore` takes `&self` because simulator subsystems keep their mutable
/// state behind interior mutability (atomics, mutexes) so that they can be
/// shared across tile threads; a restore is just another writer.
pub trait Checkpointable {
    /// Stable name of this subsystem's segment inside the checkpoint file.
    fn segment_name(&self) -> &'static str;

    /// Serializes the subsystem's state.
    fn save(&self, out: &mut Enc);

    /// Restores state previously captured by [`Checkpointable::save`] into a
    /// subsystem constructed from the *same configuration*.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CkptCorrupted`] (or [`SimError::CkptTruncated`])
    /// when the payload does not decode into a shape this instance accepts.
    fn restore(&self, data: &mut Dec<'_>) -> Result<(), SimError>;
}

/// Helper for [`Checkpointable::restore`] implementations: the typed error
/// for a payload that decodes but does not fit this instance.
pub fn corrupted(segment: &str) -> SimError {
    SimError::CkptCorrupted { segment: segment.to_string() }
}
