//! Little-endian cursor encoders/decoders for segment payloads.

use graphite_base::SimError;

/// An append-only little-endian encoder building one segment payload.
///
/// # Examples
///
/// ```
/// use graphite_ckpt::{Dec, Enc};
/// let mut e = Enc::new();
/// e.u32(7);
/// e.bytes(b"abc");
/// let buf = e.finish();
/// let mut d = Dec::new(&buf);
/// assert_eq!(d.u32().unwrap(), 7);
/// assert_eq!(d.bytes().unwrap(), b"abc");
/// assert!(d.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed byte string (`u64` length + data).
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Appends a length-prefixed `u64` slice.
    pub fn words(&mut self, v: &[u64]) {
        self.u64(v.len() as u64);
        for &w in v {
            self.u64(w);
        }
    }

    /// The encoded payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// A little-endian decoding cursor over one segment payload. Every read is
/// bounds-checked and returns [`SimError::CkptTruncated`] instead of
/// panicking when the payload runs out.
#[derive(Debug)]
pub struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Creates a cursor at the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Dec { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SimError> {
        let end = self.pos.checked_add(n).ok_or(SimError::CkptTruncated)?;
        if end > self.data.len() {
            return Err(SimError::CkptTruncated);
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CkptTruncated`] past the end of the payload.
    pub fn u8(&mut self) -> Result<u8, SimError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CkptTruncated`] past the end of the payload.
    pub fn u32(&mut self) -> Result<u32, SimError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CkptTruncated`] past the end of the payload.
    pub fn u64(&mut self) -> Result<u64, SimError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CkptTruncated`] when the declared length exceeds
    /// the remaining payload.
    pub fn bytes(&mut self) -> Result<&'a [u8], SimError> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| SimError::CkptTruncated)?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CkptTruncated`] on exhaustion; invalid UTF-8 is
    /// reported as a corrupted "string" payload.
    pub fn str(&mut self) -> Result<&'a str, SimError> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|_| SimError::CkptCorrupted { segment: "string".to_string() })
    }

    /// Reads a length-prefixed `u64` slice.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CkptTruncated`] when the declared count exceeds
    /// the remaining payload.
    pub fn words(&mut self) -> Result<Vec<u64>, SimError> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| SimError::CkptTruncated)?;
        if n.checked_mul(8).is_none_or(|bytes| self.pos + bytes > self.data.len()) {
            return Err(SimError::CkptTruncated);
        }
        (0..n).map(|_| self.u64()).collect()
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when the payload is fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut e = Enc::new();
        e.u8(0xAB);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 1);
        e.str("hello");
        e.words(&[1, 2, 3]);
        assert!(!e.is_empty());
        assert_eq!(e.len(), 1 + 4 + 8 + (8 + 5) + (8 + 24));
        let buf = e.finish();
        let mut d = Dec::new(&buf);
        assert_eq!(d.u8().unwrap(), 0xAB);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.str().unwrap(), "hello");
        assert_eq!(d.words().unwrap(), vec![1, 2, 3]);
        assert!(d.is_empty());
    }

    #[test]
    fn truncation_is_typed_not_a_panic() {
        let mut e = Enc::new();
        e.u64(42);
        let buf = e.finish();
        let mut d = Dec::new(&buf[..5]);
        assert_eq!(d.u64().unwrap_err(), SimError::CkptTruncated);
    }

    #[test]
    fn oversized_declared_lengths_are_truncation() {
        // A byte string claiming more data than the payload holds.
        let mut e = Enc::new();
        e.u64(1 << 40);
        let buf = e.finish();
        assert_eq!(Dec::new(&buf).bytes().unwrap_err(), SimError::CkptTruncated);
        // A word list claiming a count that would overflow the payload.
        let mut e = Enc::new();
        e.u64(u64::MAX / 2);
        let buf = e.finish();
        assert_eq!(Dec::new(&buf).words().unwrap_err(), SimError::CkptTruncated);
    }

    #[test]
    fn invalid_utf8_is_corruption() {
        let mut e = Enc::new();
        e.bytes(&[0xFF, 0xFE]);
        let buf = e.finish();
        assert!(matches!(
            Dec::new(&buf).str().unwrap_err(),
            SimError::CkptCorrupted { segment } if segment == "string"
        ));
    }
}
