//! Little-endian cursor encoders/decoders for segment payloads.

use graphite_base::SimError;

/// An append-only little-endian encoder building one segment payload.
///
/// # Examples
///
/// ```
/// use graphite_ckpt::{Dec, Enc};
/// let mut e = Enc::new();
/// e.u32(7);
/// e.bytes(b"abc");
/// let buf = e.finish();
/// let mut d = Dec::new(&buf);
/// assert_eq!(d.u32().unwrap(), 7);
/// assert_eq!(d.bytes().unwrap(), b"abc");
/// assert!(d.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed byte string (`u64` length + data).
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Appends a length-prefixed `u64` slice.
    pub fn words(&mut self, v: &[u64]) {
        self.u64(v.len() as u64);
        for &w in v {
            self.u64(w);
        }
    }

    /// Appends a `u64` as an LEB128 varint (1 byte for values < 128,
    /// at most 10 bytes).
    pub fn varint(&mut self, mut v: u64) {
        while v >= 0x80 {
            self.buf.push((v as u8 & 0x7F) | 0x80);
            v >>= 7;
        }
        self.buf.push(v as u8);
    }

    /// Appends a `u64` slice as varint count + zigzag-delta varints.
    ///
    /// Replay-log streams (message arrival timestamps, partner picks) are
    /// mostly small or slowly growing, so consecutive differences fit one or
    /// two bytes where [`Enc::words`] spends eight. Decode with
    /// [`Dec::delta_words`].
    pub fn delta_words(&mut self, v: &[u64]) {
        self.varint(v.len() as u64);
        let mut prev = 0u64;
        for &w in v {
            self.varint(zigzag(w.wrapping_sub(prev) as i64));
            prev = w;
        }
    }

    /// The encoded payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far, as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Maps signed deltas onto small unsigned varints: 0, −1, 1, −2, … →
/// 0, 1, 2, 3, … so near-zero differences of either sign stay one byte.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A little-endian decoding cursor over one segment payload. Every read is
/// bounds-checked and returns [`SimError::CkptTruncated`] instead of
/// panicking when the payload runs out.
#[derive(Debug)]
pub struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Creates a cursor at the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Dec { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SimError> {
        let end = self.pos.checked_add(n).ok_or(SimError::CkptTruncated)?;
        if end > self.data.len() {
            return Err(SimError::CkptTruncated);
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CkptTruncated`] past the end of the payload.
    pub fn u8(&mut self) -> Result<u8, SimError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CkptTruncated`] past the end of the payload.
    pub fn u32(&mut self) -> Result<u32, SimError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CkptTruncated`] past the end of the payload.
    pub fn u64(&mut self) -> Result<u64, SimError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CkptTruncated`] when the declared length exceeds
    /// the remaining payload.
    pub fn bytes(&mut self) -> Result<&'a [u8], SimError> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| SimError::CkptTruncated)?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CkptTruncated`] on exhaustion; invalid UTF-8 is
    /// reported as a corrupted "string" payload.
    pub fn str(&mut self) -> Result<&'a str, SimError> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|_| SimError::CkptCorrupted { segment: "string".to_string() })
    }

    /// Reads a length-prefixed `u64` slice.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CkptTruncated`] when the declared count exceeds
    /// the remaining payload.
    pub fn words(&mut self) -> Result<Vec<u64>, SimError> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| SimError::CkptTruncated)?;
        if n.checked_mul(8).is_none_or(|bytes| self.pos + bytes > self.data.len()) {
            return Err(SimError::CkptTruncated);
        }
        (0..n).map(|_| self.u64()).collect()
    }

    /// Reads an LEB128 varint.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CkptTruncated`] on exhaustion and
    /// [`SimError::CkptCorrupted`] when the encoding runs past 10 bytes or
    /// overflows a `u64`.
    pub fn varint(&mut self) -> Result<u64, SimError> {
        let corrupted = || SimError::CkptCorrupted { segment: "varint".to_string() };
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let b = self.u8()?;
            let low = (b & 0x7F) as u64;
            if shift == 63 && low > 1 {
                return Err(corrupted());
            }
            v |= low << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(corrupted())
    }

    /// Reads a slice written with [`Enc::delta_words`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CkptTruncated`] when the declared count exceeds
    /// the remaining payload (each element is at least one byte) and
    /// [`SimError::CkptCorrupted`] on malformed varints.
    pub fn delta_words(&mut self) -> Result<Vec<u64>, SimError> {
        let n = self.varint()?;
        let n = usize::try_from(n).map_err(|_| SimError::CkptTruncated)?;
        if n > self.remaining() {
            return Err(SimError::CkptTruncated);
        }
        let mut out = Vec::with_capacity(n);
        let mut prev = 0u64;
        for _ in 0..n {
            prev = prev.wrapping_add(unzigzag(self.varint()?) as u64);
            out.push(prev);
        }
        Ok(out)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when the payload is fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut e = Enc::new();
        e.u8(0xAB);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 1);
        e.str("hello");
        e.words(&[1, 2, 3]);
        assert!(!e.is_empty());
        assert_eq!(e.len(), 1 + 4 + 8 + (8 + 5) + (8 + 24));
        let buf = e.finish();
        let mut d = Dec::new(&buf);
        assert_eq!(d.u8().unwrap(), 0xAB);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.str().unwrap(), "hello");
        assert_eq!(d.words().unwrap(), vec![1, 2, 3]);
        assert!(d.is_empty());
    }

    #[test]
    fn truncation_is_typed_not_a_panic() {
        let mut e = Enc::new();
        e.u64(42);
        let buf = e.finish();
        let mut d = Dec::new(&buf[..5]);
        assert_eq!(d.u64().unwrap_err(), SimError::CkptTruncated);
    }

    #[test]
    fn oversized_declared_lengths_are_truncation() {
        // A byte string claiming more data than the payload holds.
        let mut e = Enc::new();
        e.u64(1 << 40);
        let buf = e.finish();
        assert_eq!(Dec::new(&buf).bytes().unwrap_err(), SimError::CkptTruncated);
        // A word list claiming a count that would overflow the payload.
        let mut e = Enc::new();
        e.u64(u64::MAX / 2);
        let buf = e.finish();
        assert_eq!(Dec::new(&buf).words().unwrap_err(), SimError::CkptTruncated);
    }

    #[test]
    fn varint_roundtrips_edge_values() {
        for v in [0u64, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX - 1, u64::MAX] {
            let mut e = Enc::new();
            e.varint(v);
            let mut d = Dec::new(e.as_slice());
            assert_eq!(d.varint().unwrap(), v, "value {v}");
            assert!(d.is_empty());
        }
        // Small values are one byte; the worst case is ten.
        let mut e = Enc::new();
        e.varint(127);
        assert_eq!(e.len(), 1);
        let mut e = Enc::new();
        e.varint(u64::MAX);
        assert_eq!(e.len(), 10);
    }

    #[test]
    fn overlong_varint_is_corruption() {
        // Eleven continuation bytes can never be a valid u64.
        let buf = [0x80u8; 11];
        assert!(matches!(
            Dec::new(&buf).varint().unwrap_err(),
            SimError::CkptCorrupted { segment } if segment == "varint"
        ));
        // A tenth byte carrying more than one bit overflows.
        let mut buf = [0x80u8; 10];
        buf[9] = 0x02;
        assert!(matches!(
            Dec::new(&buf).varint().unwrap_err(),
            SimError::CkptCorrupted { segment } if segment == "varint"
        ));
    }

    #[test]
    fn delta_words_roundtrips_arrival_order_stream() {
        // Monotone timestamps, the shape of a message arrival-order stream:
        // large absolute values, tiny deltas.
        let stream: Vec<u64> = (0..1000u64).map(|i| 5_000_000_000 + i * 37).collect();
        let mut e = Enc::new();
        e.delta_words(&stream);
        let compressed = e.len();
        let mut d = Dec::new(e.as_slice());
        assert_eq!(d.delta_words().unwrap(), stream);
        assert!(d.is_empty());
        // words() spends 8 bytes per entry; deltas of 37 fit in one.
        let mut plain = Enc::new();
        plain.words(&stream);
        assert!(compressed * 4 < plain.len(), "{compressed} bytes vs {} plain", plain.len());
    }

    #[test]
    fn delta_words_roundtrips_partner_pick_stream() {
        // Partner picks: small values jumping in both directions.
        let stream: Vec<u64> = (0..500u64).map(|i| (i * 2_654_435_761) % 64).collect();
        let mut e = Enc::new();
        e.delta_words(&stream);
        let mut d = Dec::new(e.as_slice());
        assert_eq!(d.delta_words().unwrap(), stream);
        // Extremes survive the zigzag wraparound.
        for extreme in [vec![], vec![u64::MAX], vec![u64::MAX, 0, u64::MAX, 1]] {
            let mut e = Enc::new();
            e.delta_words(&extreme);
            assert_eq!(Dec::new(e.as_slice()).delta_words().unwrap(), extreme);
        }
    }

    #[test]
    fn delta_words_declared_count_past_payload_is_truncation() {
        let mut e = Enc::new();
        e.varint(1 << 30); // count far beyond the remaining bytes
        let buf = e.finish();
        assert_eq!(Dec::new(&buf).delta_words().unwrap_err(), SimError::CkptTruncated);
    }

    #[test]
    fn invalid_utf8_is_corruption() {
        let mut e = Enc::new();
        e.bytes(&[0xFF, 0xFE]);
        let buf = e.finish();
        assert!(matches!(
            Dec::new(&buf).str().unwrap_err(),
            SimError::CkptCorrupted { segment } if segment == "string"
        ));
    }
}
