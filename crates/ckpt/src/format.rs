//! The `graphite.ckpt.v4` container: magic + version + checksummed segments.

use std::collections::BTreeMap;
use std::path::Path;

use graphite_base::SimError;

/// Leading magic bytes of every checkpoint file.
pub const CKPT_MAGIC: [u8; 8] = *b"GRAPHCKP";

/// Format version this build reads and writes. v2 switched replay-log
/// streams to zigzag-delta varint encoding ([`crate::Enc::delta_words`]);
/// v4 made the memory directory a single shard-count-independent stream.
pub const CKPT_VERSION: u32 = 4;

/// FNV-1a 64-bit hash, the format's segment checksum. Not cryptographic —
/// it guards against torn writes and bit rot, not adversaries.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Collects named segments and writes one checkpoint file.
///
/// # Examples
///
/// ```no_run
/// use graphite_ckpt::CkptWriter;
/// let mut w = CkptWriter::new();
/// w.segment("clocks", vec![1, 2, 3]);
/// w.write_to("run.ckpt".as_ref()).unwrap();
/// ```
#[derive(Debug, Default)]
pub struct CkptWriter {
    segments: Vec<(String, Vec<u8>)>,
}

impl CkptWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a segment. Names must be unique; a duplicate replaces the
    /// earlier payload.
    pub fn segment(&mut self, name: &str, payload: Vec<u8>) {
        if let Some(existing) = self.segments.iter_mut().find(|(n, _)| n == name) {
            existing.1 = payload;
        } else {
            self.segments.push((name.to_string(), payload));
        }
    }

    /// Serializes the container to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&CKPT_MAGIC);
        out.extend_from_slice(&CKPT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.segments.len() as u32).to_le_bytes());
        for (name, payload) in &self.segments {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        }
        for (_, payload) in &self.segments {
            out.extend_from_slice(payload);
        }
        out
    }

    /// Writes the container to `path`, atomically: the bytes go to a
    /// temporary sibling first and are renamed into place, so a crash
    /// mid-write never leaves a half-written checkpoint under the final name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CkptIo`] on any filesystem failure.
    pub fn write_to(&self, path: &Path) -> Result<(), SimError> {
        let io = |e: std::io::Error| SimError::CkptIo(format!("{}: {e}", path.display()));
        let tmp = path.with_extension("ckpt.tmp");
        std::fs::write(&tmp, self.to_bytes()).map_err(io)?;
        std::fs::rename(&tmp, path).map_err(io)
    }
}

struct SegmentMeta {
    offset: usize,
    len: usize,
}

/// Opens and validates a checkpoint file, exposing its segments.
///
/// Opening verifies the magic, the format version, that every declared
/// segment payload lies within the file, and every segment checksum — so any
/// `&[u8]` handed out by [`CkptReader::segment`] is already integrity-checked.
pub struct CkptReader {
    data: Vec<u8>,
    directory: BTreeMap<String, SegmentMeta>,
}

impl std::fmt::Debug for CkptReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CkptReader")
            .field("bytes", &self.data.len())
            .field("segments", &self.directory.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl CkptReader {
    /// Reads and validates the checkpoint at `path`.
    ///
    /// # Errors
    ///
    /// [`SimError::CkptIo`] when the file cannot be read,
    /// [`SimError::CkptCorrupted`] on bad magic or checksum,
    /// [`SimError::CkptVersionMismatch`] on a foreign version, and
    /// [`SimError::CkptTruncated`] when declared contents overrun the file.
    pub fn open(path: &Path) -> Result<Self, SimError> {
        let data = std::fs::read(path)
            .map_err(|e| SimError::CkptIo(format!("{}: {e}", path.display())))?;
        Self::from_bytes(data)
    }

    /// Validates an in-memory checkpoint image.
    ///
    /// # Errors
    ///
    /// As for [`CkptReader::open`], minus the I/O case.
    pub fn from_bytes(data: Vec<u8>) -> Result<Self, SimError> {
        let manifest = || SimError::CkptCorrupted { segment: "manifest".to_string() };
        if data.len() < CKPT_MAGIC.len() + 8 {
            return Err(SimError::CkptTruncated);
        }
        if data[..8] != CKPT_MAGIC {
            return Err(manifest());
        }
        let version = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
        if version != CKPT_VERSION {
            return Err(SimError::CkptVersionMismatch { found: version, expected: CKPT_VERSION });
        }
        let count = u32::from_le_bytes(data[12..16].try_into().expect("4 bytes")) as usize;
        let mut pos = 16usize;
        let mut entries: Vec<(String, usize, u64)> = Vec::with_capacity(count);
        for _ in 0..count {
            if pos + 4 > data.len() {
                return Err(SimError::CkptTruncated);
            }
            let name_len =
                u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            pos += 4;
            if pos + name_len > data.len() {
                return Err(SimError::CkptTruncated);
            }
            let name = std::str::from_utf8(&data[pos..pos + name_len])
                .map_err(|_| manifest())?
                .to_string();
            pos += name_len;
            if pos + 16 > data.len() {
                return Err(SimError::CkptTruncated);
            }
            let payload_len = u64::from_le_bytes(data[pos..pos + 8].try_into().expect("8 bytes"));
            let checksum = u64::from_le_bytes(data[pos + 8..pos + 16].try_into().expect("8 bytes"));
            pos += 16;
            let payload_len = usize::try_from(payload_len).map_err(|_| SimError::CkptTruncated)?;
            entries.push((name, payload_len, checksum));
        }
        let mut directory = BTreeMap::new();
        for (name, len, checksum) in entries {
            let end = pos.checked_add(len).ok_or(SimError::CkptTruncated)?;
            if end > data.len() {
                return Err(SimError::CkptTruncated);
            }
            if fnv1a64(&data[pos..end]) != checksum {
                return Err(SimError::CkptCorrupted { segment: name });
            }
            directory.insert(name, SegmentMeta { offset: pos, len });
            pos = end;
        }
        Ok(CkptReader { data, directory })
    }

    /// Names of all segments, sorted.
    pub fn segment_names(&self) -> Vec<&str> {
        self.directory.keys().map(String::as_str).collect()
    }

    /// True when a segment is present.
    pub fn has_segment(&self, name: &str) -> bool {
        self.directory.contains_key(name)
    }

    /// The (checksum-verified) payload of a segment.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CkptMissingSegment`] when absent.
    pub fn segment(&self, name: &str) -> Result<&[u8], SimError> {
        let meta = self
            .directory
            .get(name)
            .ok_or_else(|| SimError::CkptMissingSegment(name.to_string()))?;
        Ok(&self.data[meta.offset..meta.offset + meta.len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = CkptWriter::new();
        w.segment("alpha", b"first payload".to_vec());
        w.segment("beta", vec![0u8; 256]);
        w.segment("empty", Vec::new());
        w.to_bytes()
    }

    #[test]
    fn roundtrip_preserves_segments() {
        let r = CkptReader::from_bytes(sample()).unwrap();
        assert_eq!(r.segment_names(), vec!["alpha", "beta", "empty"]);
        assert_eq!(r.segment("alpha").unwrap(), b"first payload");
        assert_eq!(r.segment("beta").unwrap().len(), 256);
        assert_eq!(r.segment("empty").unwrap().len(), 0);
        assert!(r.has_segment("beta"));
        assert!(!r.has_segment("gamma"));
    }

    #[test]
    fn duplicate_segment_replaces() {
        let mut w = CkptWriter::new();
        w.segment("s", b"old".to_vec());
        w.segment("s", b"new".to_vec());
        let r = CkptReader::from_bytes(w.to_bytes()).unwrap();
        assert_eq!(r.segment("s").unwrap(), b"new");
    }

    #[test]
    fn missing_segment_is_typed() {
        let r = CkptReader::from_bytes(sample()).unwrap();
        assert_eq!(
            r.segment("gamma").unwrap_err(),
            SimError::CkptMissingSegment("gamma".to_string())
        );
    }

    #[test]
    fn corrupted_payload_detected_by_name() {
        let mut bytes = sample();
        let n = bytes.len();
        // "empty" carries no bytes, so the file's last byte belongs to "beta".
        bytes[n - 1] ^= 0xFF;
        let err = CkptReader::from_bytes(bytes).unwrap_err();
        assert!(matches!(err, SimError::CkptCorrupted { segment } if segment == "beta"));
    }

    #[test]
    fn corrupted_magic_is_manifest_corruption() {
        let mut bytes = sample();
        bytes[0] = b'X';
        assert!(matches!(
            CkptReader::from_bytes(bytes).unwrap_err(),
            SimError::CkptCorrupted { segment } if segment == "manifest"
        ));
    }

    #[test]
    fn version_mismatch_is_typed() {
        let mut bytes = sample();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            CkptReader::from_bytes(bytes).unwrap_err(),
            SimError::CkptVersionMismatch { found: 99, expected: CKPT_VERSION }
        );
    }

    #[test]
    fn truncated_inputs_are_typed_never_panic() {
        let bytes = sample();
        // Every prefix must fail cleanly with a typed error, not panic.
        for cut in 0..bytes.len() {
            match CkptReader::from_bytes(bytes[..cut].to_vec()) {
                Err(
                    SimError::CkptTruncated
                    | SimError::CkptCorrupted { .. }
                    | SimError::CkptVersionMismatch { .. },
                ) => {}
                other => panic!("prefix of {cut} bytes: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("graphite-ckpt-format-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.ckpt");
        let mut w = CkptWriter::new();
        w.segment("x", b"data".to_vec());
        w.write_to(&path).unwrap();
        let r = CkptReader::open(&path).unwrap();
        assert_eq!(r.segment("x").unwrap(), b"data");
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(CkptReader::open(&path).unwrap_err(), SimError::CkptIo(_)));
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
