//! The distributed shared-memory system (paper §3.2).
//!
//! This is where Graphite's central trick lives: the data structures that
//! keep the application's memory *functionally correct* across tiles are the
//! same ones that model the target memory architecture. Caches hold the
//! application's real bytes; a miss runs a real directory-MSI transaction
//! that moves those bytes, while every protocol hop is priced through the
//! network model and every DRAM access through a lax-queue controller model.
//!
//! ## Concurrency design
//!
//! Guest threads perform transactions directly against shared protocol state
//! ("remote access with modeled message timing"). The miss path is a
//! pipeline, not a lock-step RPC:
//!
//! * **MSHRs are the top-level per-line resource.** A miss registers the
//!   line in the [`MshrTable`](crate::mshr::MshrTable); at most one
//!   transaction per line is in flight. Losers wait *without registering*,
//!   then re-probe their own cache and retry — a secondary miss from the
//!   same tile usually resolves as a local hit (coalescing). A thread holds
//!   at most one MSHR entry at a time: evictions complete (as their own
//!   MSHR-scoped transactions) before the fill's entry is acquired, and
//!   MSHR waiters sleep holding nothing, so no cycle can form.
//! * **Directory shard maps are brief leaf locks.** A transaction resolves
//!   its `DirEntry` to a stable `Box` pointer under a short map-lock
//!   critical section and then works on the entry lock-free — the MSHR
//!   already guarantees per-line exclusivity. Contended resolutions are
//!   *batched*: a thread that finds the map lock busy queues its request,
//!   and whichever thread holds the lock retires the queue under the one
//!   acquisition (flat combining).
//! * **Tile cache locks are leaves**, taken one at a time, never while a
//!   map lock is held. Read hits can skip the tile lock entirely via a
//!   seqlock-validated probe ([`Cache::probe_read`]): writers bump the
//!   tile's [`SeqCount`] around every structural or data mutation, and line
//!   data boxes are recycled through a per-tile pool instead of being freed,
//!   so a racing probe reads stale-but-allocated bytes that validation then
//!   rejects.
//!
//! A tile's cache only ever gains lines through its own thread(s); remote
//! transactions can only remove or downgrade lines. Concurrent threads *of
//! the same tile* are supported for races on the same line (the MSHR
//! coalesces them); like the lock-step design this replaces, simultaneous
//! same-tile fills of distinct lines in one cache set remain outside the
//! model's contract.

use std::collections::HashMap;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

use graphite_base::{
    Cycles, FxBuildHasher, HostProf, HostStage, SeqCount, SimError, SimRng, TileId,
};
use graphite_ckpt::{corrupted, Checkpointable, Dec, Enc};
use graphite_config::{CacheProtocol, CoherenceScheme, SimConfig};
use graphite_network::{Network, Packet, TrafficClass};
use graphite_trace::{
    Metric, MetricsRegistry, Obs, ShardedHistogram, ShardedMetric, TraceEventKind, Tracer,
};
use parking_lot::{Mutex, MutexGuard};

use crate::addr::Addr;
use crate::cache::{Cache, CacheLine, LineState};
use crate::directory::{DirEntry, DirState, SharerSet};
use crate::dram::DramController;
use crate::missclass::{MissClassifier, MissKind};
use crate::mshr::{MshrTable, MshrWait};

/// Directory processing latency per request (cycles).
const DIR_LATENCY: Cycles = Cycles(10);
/// Size in bytes of a control packet (request/ack/invalidate).
const CTRL_MSG_BYTES: u32 = 8;
/// Header bytes added to a data-carrying packet.
const DATA_HDR_BYTES: u32 = 8;

/// How one modeled memory access spent its latency — the memory system's
/// contribution to per-tile cycle attribution (CPI stacks).
///
/// For a hit, the whole latency is local hierarchy time. For a miss,
/// `network` isolates the interconnect legs on the requester's critical path
/// (request to home, response back); the remainder is directory, remote
/// cache, and DRAM time. Always `network <= latency`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemCost {
    /// Total modeled latency of the access.
    pub latency: Cycles,
    /// True when every line segment was satisfied from the tile's own
    /// hierarchy (no directory transaction).
    pub hit: bool,
    /// Cycles of the latency spent on interconnect legs (zero for hits).
    pub network: Cycles,
}

impl MemCost {
    fn hit(latency: Cycles) -> Self {
        MemCost { latency, hit: true, network: Cycles::ZERO }
    }

    fn miss(latency: Cycles, network: Cycles) -> Self {
        MemCost { latency, hit: false, network: network.min(latency) }
    }

    /// Accumulates a per-segment cost into a multi-segment total: latencies
    /// and network shares add; the whole access only counts as a hit when
    /// every segment hit.
    fn fold(&mut self, seg: MemCost) {
        self.latency += seg.latency;
        self.network += seg.network;
        self.hit &= seg.hit;
    }

    fn folded_start() -> Self {
        MemCost { latency: Cycles::ZERO, hit: true, network: Cycles::ZERO }
    }
}

/// Per-tile cache hierarchy.
#[derive(Debug)]
struct TileMem {
    l1i: Option<Cache>,
    l1d: Option<Cache>,
    l2: Option<Cache>,
    /// Line-sized staging buffer for upgrade-path write propagation. Only
    /// this tile's own thread fills its caches, so the buffer needs no
    /// synchronization beyond the tile lock it lives under.
    scratch: Box<[u8]>,
    /// Free pool of line-sized data boxes. The miss path stages fills here
    /// and every box freed by a purge/eviction/refill is recycled, so the
    /// steady-state miss path allocates nothing — and, critically for the
    /// lock-free probe, a line's data buffer is never deallocated while the
    /// simulation runs (a stale probe pointer reads garbage from a live
    /// allocation, which seqlock validation rejects; it never reads freed
    /// memory).
    pool: Vec<Box<[u8]>>,
}

impl TileMem {
    /// The coherence-level cache: L2 when present, else L1D.
    fn coh(&mut self) -> &mut Cache {
        self.l2.as_mut().or(self.l1d.as_mut()).expect("validated: some cache level exists")
    }

    fn coh_ref(&self) -> &Cache {
        self.l2.as_ref().or(self.l1d.as_ref()).expect("validated: some cache level exists")
    }

    /// True when L1D filters in front of a coherent L2.
    fn has_l1_filter(&self) -> bool {
        self.l1d.is_some() && self.l2.is_some()
    }

    /// Removes a line from every level, returning the coherence-level line
    /// state and data if it was resident. The L1 copy's buffer goes back to
    /// the pool (never freed — see [`TileMem::pool`]).
    fn purge(&mut self, line: u64) -> Option<(LineState, Option<Box<[u8]>>)> {
        if self.has_l1_filter() {
            if let Some(l1) = self.l1d.as_mut().unwrap().remove(line) {
                if let Some(d) = l1.data {
                    self.pool.push(d);
                }
            }
        }
        self.coh().remove(line).map(|l| (l.state, l.data))
    }

    /// Takes a line-sized buffer from the pool (or allocates the pool's
    /// first-ever box for this slot).
    fn pool_take(&mut self) -> Box<[u8]> {
        self.pool.pop().unwrap_or_else(|| vec![0u8; self.scratch.len()].into())
    }

    fn recycle(&mut self, buf: Box<[u8]>) {
        debug_assert_eq!(buf.len(), self.scratch.len());
        self.pool.push(buf);
    }
}

/// Aggregate memory-system statistics.
///
/// Every counter is a [`ShardedMetric`]: updates land in the *requesting*
/// tile's cache-padded lane (even counters describing remote effects, such as
/// `invalidations` — they are incremented on the requester's protocol path),
/// so concurrent guest threads never write a shared cache line. Readers see
/// the lane sum via `get()`.
#[derive(Debug, Default)]
pub struct MemStats {
    /// Load accesses (per line segment).
    pub loads: ShardedMetric,
    /// Store accesses (per line segment).
    pub stores: ShardedMetric,
    /// Hits in the L1D filter.
    pub l1d_hits: ShardedMetric,
    /// Hits in the coherence-level cache (L2, or L1D when it is the only
    /// level).
    pub l2_hits: ShardedMetric,
    /// Misses requiring a directory transaction with data transfer.
    pub misses: ShardedMetric,
    /// Write-permission upgrades (line present Shared, no data transfer).
    pub upgrades: ShardedMetric,
    /// Invalidation messages sent to sharers.
    pub invalidations: ShardedMetric,
    /// Dirty writebacks (evictions and downgrades of Modified lines).
    pub writebacks: ShardedMetric,
    /// DRAM data reads.
    pub dram_reads: ShardedMetric,
    /// Misses by classified kind (only populated when classification is on).
    pub miss_cold: ShardedMetric,
    /// See [`MemStats::miss_cold`].
    pub miss_capacity: ShardedMetric,
    /// See [`MemStats::miss_cold`].
    pub miss_true_sharing: ShardedMetric,
    /// See [`MemStats::miss_cold`].
    pub miss_false_sharing: ShardedMetric,
    /// Sharer evictions forced by a full limited directory (DirNB).
    pub forced_evictions: ShardedMetric,
    /// LimitLESS software traps taken at directories.
    pub limitless_traps: ShardedMetric,
    /// Fills served cache-to-cache from a Modified owner.
    pub remote_fills: ShardedMetric,
    /// Total memory-access latency accumulated (cycles).
    pub latency_sum: ShardedMetric,
    /// Instruction fetch accesses.
    pub ifetches: ShardedMetric,
    /// Instruction fetch misses.
    pub ifetch_misses: ShardedMetric,
    /// Largest single access latency seen (cycles; diagnostic).
    pub max_latency: ShardedMetric,
    /// Exclusive-state grants on read misses (MESI only).
    pub exclusive_grants: ShardedMetric,
    /// Writes satisfied by a silent Exclusive→Modified upgrade (MESI only):
    /// no directory transaction needed.
    pub silent_upgrades: ShardedMetric,
    /// Secondary misses coalesced onto an in-flight MSHR entry of the same
    /// tile (the waiter re-probed and hit instead of re-running the
    /// transaction).
    pub mshr_coalesced: ShardedMetric,
    /// Misses that waited for a *different* tile's in-flight transaction on
    /// the same line before proceeding.
    pub mshr_conflict_waits: ShardedMetric,
    /// Miss registrations that stalled because the tile was at its
    /// `mshr_entries` outstanding cap.
    pub mshr_stall_full: ShardedMetric,
    /// Directory shard-map lock acquisitions on the batched path.
    pub dir_batch_acquisitions: ShardedMetric,
    /// Queued directory requests retired under someone else's shard-map
    /// acquisition (flat combining). `requests_combined / acquisitions`
    /// measures how much the batching collapses lock traffic.
    pub dir_batch_combined: ShardedMetric,
    /// Read hits served by the lock-free seqlock probe (no tile lock).
    pub probe_hits: ShardedMetric,
}

impl MemStats {
    /// Builds stats whose counters are registered in `metrics` under the
    /// `mem.*` namespace, so snapshots and reports read the same cells.
    /// Each name still appears as a single scalar in `metrics.json`; the
    /// lanes are an implementation detail folded at snapshot time.
    pub fn registered(metrics: &MetricsRegistry) -> Self {
        MemStats {
            loads: metrics.sharded_counter("mem.loads"),
            stores: metrics.sharded_counter("mem.stores"),
            l1d_hits: metrics.sharded_counter("mem.l1d_hits"),
            l2_hits: metrics.sharded_counter("mem.l2_hits"),
            misses: metrics.sharded_counter("mem.misses"),
            upgrades: metrics.sharded_counter("mem.upgrades"),
            invalidations: metrics.sharded_counter("mem.invalidations"),
            writebacks: metrics.sharded_counter("mem.writebacks"),
            dram_reads: metrics.sharded_counter("mem.dram_reads"),
            miss_cold: metrics.sharded_counter("mem.miss_cold"),
            miss_capacity: metrics.sharded_counter("mem.miss_capacity"),
            miss_true_sharing: metrics.sharded_counter("mem.miss_true_sharing"),
            miss_false_sharing: metrics.sharded_counter("mem.miss_false_sharing"),
            forced_evictions: metrics.sharded_counter("mem.forced_evictions"),
            limitless_traps: metrics.sharded_counter("mem.limitless_traps"),
            remote_fills: metrics.sharded_counter("mem.remote_fills"),
            latency_sum: metrics.sharded_counter("mem.latency_sum"),
            ifetches: metrics.sharded_counter("mem.ifetches"),
            ifetch_misses: metrics.sharded_counter("mem.ifetch_misses"),
            max_latency: metrics.sharded_max("mem.max_latency"),
            exclusive_grants: metrics.sharded_counter("mem.exclusive_grants"),
            silent_upgrades: metrics.sharded_counter("mem.silent_upgrades"),
            mshr_coalesced: metrics.sharded_counter("mem.mshr.coalesced"),
            mshr_conflict_waits: metrics.sharded_counter("mem.mshr.conflict_waits"),
            mshr_stall_full: metrics.sharded_counter("mem.mshr.stall_full"),
            dir_batch_acquisitions: metrics.sharded_counter("mem.dir.batch.acquisitions"),
            dir_batch_combined: metrics.sharded_counter("mem.dir.batch.requests_combined"),
            probe_hits: metrics.sharded_counter("mem.probe_hits"),
        }
    }

    /// Total data accesses.
    pub fn accesses(&self) -> u64 {
        self.loads.get() + self.stores.get()
    }

    /// Overall miss rate (misses / accesses), in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses.get() as f64 / a as f64
        }
    }

    /// Mean memory-access latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.latency_sum.get() as f64 / a as f64
        }
    }

    /// Miss count for one classified kind.
    pub fn miss_count(&self, kind: MissKind) -> u64 {
        match kind {
            MissKind::Cold => self.miss_cold.get(),
            MissKind::Capacity => self.miss_capacity.get(),
            MissKind::TrueSharing => self.miss_true_sharing.get(),
            MissKind::FalseSharing => self.miss_false_sharing.get(),
        }
    }

    fn record_kind(&self, lane: usize, kind: MissKind) {
        match kind {
            MissKind::Cold => self.miss_cold.incr_owned(lane),
            MissKind::Capacity => self.miss_capacity.incr_owned(lane),
            MissKind::TrueSharing => self.miss_true_sharing.incr_owned(lane),
            MissKind::FalseSharing => self.miss_false_sharing.incr_owned(lane),
        }
    }
}

enum LineOp<'a> {
    Read(&'a mut [u8]),
    Write(&'a [u8]),
    /// Atomic read-modify-write: `old` receives the previous bytes, then `f`
    /// rewrites the window in place. Applied while the line is held with
    /// write permission under the protocol locks, so it is atomic with
    /// respect to every other tile.
    Rmw {
        old: &'a mut [u8],
        f: &'a mut dyn FnMut(&mut [u8]),
    },
}

impl LineOp<'_> {
    fn is_write(&self) -> bool {
        !matches!(self, LineOp::Read(_))
    }

    fn len(&self) -> usize {
        match self {
            LineOp::Read(b) => b.len(),
            LineOp::Write(b) => b.len(),
            LineOp::Rmw { old, .. } => old.len(),
        }
    }
}

fn apply_rmw(data: &mut [u8], off: usize, old: &mut [u8], f: &mut dyn FnMut(&mut [u8])) {
    let window = &mut data[off..off + old.len()];
    old.copy_from_slice(window);
    f(window);
}

/// Where the bytes for a miss fill come from.
enum FillSrc {
    /// The directory's home copy (`DirEntry::data`), still current at fill
    /// time (the MSHR keeps the entry stable); copied into the fill buffer
    /// at fill time.
    Home,
    /// An owner cache already staged the line into the fill buffer
    /// (cache-to-cache transfer).
    Staged,
}

/// A queued directory-entry resolution: whichever thread holds the shard's
/// map lock stores the resolved entry pointer into `slot`. The slot lives on
/// the waiting thread's stack; the enqueuer never returns until the slot is
/// filled, and every store happens while the map lock is held, so the slot
/// cannot dangle.
struct PendingDirReq {
    line: u64,
    slot: *const AtomicPtr<DirEntry>,
}

// Safety: the raw slot pointer is only dereferenced under the shard's map
// lock while the owning thread is provably parked in `dir_entry_batched`.
unsafe impl Send for PendingDirReq {}

/// One directory shard: the entry map plus the flat-combining queue for
/// contended resolutions. Entries are boxed so their addresses survive map
/// rehashes; an entry, once inserted, is never removed while the simulation
/// runs.
struct DirShard {
    map: Mutex<HashMap<u64, Box<DirEntry>, FxBuildHasher>>,
    pending: Mutex<Vec<PendingDirReq>>,
    /// Cheap hint so the uncontended path can skip locking `pending`.
    pending_count: AtomicUsize,
}

impl DirShard {
    fn new() -> Self {
        DirShard {
            map: Mutex::new(HashMap::default()),
            pending: Mutex::new(Vec::new()),
            pending_count: AtomicUsize::new(0),
        }
    }
}

/// Raw pointer to a tile's front data cache for the lock-free read probe,
/// with the latency/attribution a locked hit would have produced.
struct ProbeTarget {
    cache: *const Cache,
    lat: Cycles,
    /// Whether a probe hit counts as an L1D hit (L1 filter present) or a
    /// coherence-level hit (single-level hierarchy).
    is_l1: bool,
}

// Safety: the pointer targets a `Cache` inside `MemorySystem::tiles`, whose
// heap allocation lives exactly as long as the `MemorySystem`; all racy
// access goes through `Cache::probe_read`'s seqlock protocol.
unsafe impl Send for ProbeTarget {}
unsafe impl Sync for ProbeTarget {}

/// Per-requesting-tile counters consumed by the host performance model.
#[derive(Debug, Default)]
pub struct PerTileMemCounters {
    /// Line-segment accesses issued by this tile.
    pub accesses: Metric,
    /// Directory transactions (misses + upgrades) by this tile.
    pub transactions: Metric,
    /// Transactions whose home tile lives in a different simulated host
    /// process (these cross process boundaries on a real cluster).
    pub remote_home_transactions: Metric,
    /// Total modeled memory latency charged to this tile (cycles).
    pub latency_sum: Metric,
}

impl PerTileMemCounters {
    /// Builds one counter set per tile, registered as `mem.tile.*` per-tile
    /// lanes in `metrics`.
    pub fn registered_lanes(metrics: &MetricsRegistry) -> Vec<Self> {
        let accesses = metrics.per_tile("mem.tile.accesses");
        let transactions = metrics.per_tile("mem.tile.transactions");
        let remote = metrics.per_tile("mem.tile.remote_home_transactions");
        let latency = metrics.per_tile("mem.tile.latency_sum");
        (0..metrics.num_tiles())
            .map(|i| PerTileMemCounters {
                accesses: accesses[i].clone(),
                transactions: transactions[i].clone(),
                remote_home_transactions: remote[i].clone(),
                latency_sum: latency[i].clone(),
            })
            .collect()
    }
}

/// The memory subsystem: per-tile cache hierarchies, the distributed
/// directory, DRAM controllers, and the functional backing store.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use graphite_base::{Cycles, GlobalProgress, TileId};
/// use graphite_memory::{Addr, MemorySystem};
/// use graphite_network::Network;
///
/// let cfg = graphite_config::presets::paper_default(4);
/// let net = Arc::new(Network::new(&cfg, Arc::new(GlobalProgress::new(4))));
/// let mem = MemorySystem::new(&cfg, net, false);
///
/// let lat = mem.write(TileId(0), Cycles(0), Addr(0x1000), &42u64.to_le_bytes());
/// assert!(lat > Cycles::ZERO);
/// let mut buf = [0u8; 8];
/// mem.read(TileId(1), Cycles(0), Addr(0x1000), &mut buf);
/// assert_eq!(u64::from_le_bytes(buf), 42);
/// ```
pub struct MemorySystem {
    line_size: u32,
    /// `log2(line_size)`; the config validates line sizes are powers of two,
    /// so line/offset extraction is a shift and a mask, never a division.
    line_shift: u32,
    /// `line_size - 1`.
    line_mask: u64,
    num_tiles: u32,
    tiles: Vec<Mutex<TileMem>>,
    shards: Vec<DirShard>,
    /// `log2(shards.len())`; the config validates the count is a power of
    /// two, so shard selection is a multiply and a shift.
    shard_bits: u32,
    /// In-flight miss registry (per-line exclusivity + coalescing).
    mshr: MshrTable,
    /// `[memory] mshr_entries`; 0 records same-tile waits as conflicts
    /// rather than coalesced secondaries.
    mshr_entries: u32,
    /// Max queued directory resolutions retired per map-lock acquisition.
    dir_batch: u32,
    /// `[memory] read_probe`: gate for the lock-free read-hit fast path.
    read_probe: bool,
    /// Per-tile seqlock counters; bumped (under the tile lock) around every
    /// structural or data mutation of that tile's caches.
    tile_seq: Vec<SeqCount>,
    probes: Vec<ProbeTarget>,
    /// The tag-lookup latency charged before a miss leaves the tile
    /// (L1-filter + coherence-level access latencies — config constants, so
    /// the miss path doesn't take the tile lock just to read them).
    miss_lookup_lat: Cycles,
    dram: Vec<DramController>,
    per_tile_dram: bool,
    network: Arc<Network>,
    scheme: CoherenceScheme,
    protocol: CacheProtocol,
    /// Miss classifier (enabled for the Figure 8 study).
    pub classifier: MissClassifier,
    stats: MemStats,
    per_tile: Vec<PerTileMemCounters>,
    /// Simulated host process of each tile, for locality classification.
    proc_of_tile: Vec<u32>,
    /// Distribution of per-access modeled latency (per-tile lanes, folded at
    /// snapshot time).
    latency_hist: ShardedHistogram,
    tracer: Arc<Tracer>,
    /// Host-cost profiler (`host.mem.*` stages). Disabled by default: every
    /// instrumentation point on the miss path is then one atomic load.
    hostprof: Arc<HostProf>,
}

impl std::fmt::Debug for MemorySystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemorySystem")
            .field("tiles", &self.num_tiles)
            .field("line_size", &self.line_size)
            .field("scheme", &self.scheme)
            .finish()
    }
}

impl MemorySystem {
    /// Builds the memory system for a validated configuration, with detached
    /// (unregistered, untraced) observability.
    pub fn new(cfg: &SimConfig, network: Arc<Network>, classify_misses: bool) -> Self {
        Self::with_obs(cfg, network, classify_misses, &Obs::detached(cfg.target.num_tiles as usize))
    }

    /// Builds the memory system wired into an observability context: counters
    /// register under `mem.*`, access latencies feed the `mem.latency_cycles`
    /// histogram, and protocol activity is traced when `obs.tracer` is on.
    pub fn with_obs(
        cfg: &SimConfig,
        network: Arc<Network>,
        classify_misses: bool,
        obs: &Obs,
    ) -> Self {
        debug_assert_eq!(obs.metrics.num_tiles(), cfg.target.num_tiles as usize);
        let line_size = cfg.target.coherence_line_size();
        let tiles: Vec<Mutex<TileMem>> = (0..cfg.target.num_tiles)
            .map(|_| {
                Mutex::new(TileMem {
                    l1i: cfg.target.l1i.as_ref().map(|c| Cache::new(c, false)),
                    l1d: cfg.target.l1d.as_ref().map(|c| Cache::new(c, true)),
                    l2: cfg.target.l2.as_ref().map(|c| Cache::new(c, true)),
                    scratch: vec![0u8; line_size as usize].into(),
                    pool: Vec::new(),
                })
            })
            .collect();
        // Probe targets point into `tiles`' heap buffer, which never moves
        // again (the Vec is only ever moved wholesale into the struct).
        let probes: Vec<ProbeTarget> = tiles
            .iter()
            .map(|t| {
                let tm = t.lock();
                if tm.has_l1_filter() {
                    let c = tm.l1d.as_ref().unwrap();
                    ProbeTarget { cache: c as *const Cache, lat: c.access_latency(), is_l1: true }
                } else {
                    let c = tm.coh_ref();
                    ProbeTarget { cache: c as *const Cache, lat: c.access_latency(), is_l1: false }
                }
            })
            .collect();
        let miss_lookup_lat = {
            let tm = tiles[0].lock();
            let mut l = tm.coh_ref().access_latency();
            if tm.has_l1_filter() {
                l += tm.l1d.as_ref().unwrap().access_latency();
            }
            l
        };
        let ncontrollers =
            if cfg.target.dram.per_tile_controllers { cfg.target.num_tiles } else { 1 };
        let bytes_per_cycle =
            cfg.target.dram.total_bandwidth_gbps / cfg.target.clock_ghz / ncontrollers as f64;
        let dram = (0..ncontrollers)
            .map(|_| DramController::new(bytes_per_cycle, cfg.target.dram.access_latency))
            .collect();
        debug_assert!(line_size.is_power_of_two(), "validated by SimConfig");
        MemorySystem {
            line_size,
            line_shift: line_size.trailing_zeros(),
            line_mask: line_size as u64 - 1,
            num_tiles: cfg.target.num_tiles,
            shards: (0..cfg.memory.dir_shards).map(|_| DirShard::new()).collect(),
            shard_bits: cfg.memory.dir_shards.trailing_zeros(),
            mshr: MshrTable::new(cfg.target.num_tiles as usize, cfg.memory.mshr_entries),
            mshr_entries: cfg.memory.mshr_entries,
            dir_batch: cfg.memory.dir_batch,
            read_probe: cfg.memory.read_probe,
            tile_seq: (0..cfg.target.num_tiles).map(|_| SeqCount::new()).collect(),
            probes,
            miss_lookup_lat,
            tiles,
            dram,
            per_tile_dram: cfg.target.dram.per_tile_controllers,
            network,
            scheme: cfg.target.coherence,
            protocol: cfg.target.protocol,
            classifier: MissClassifier::new(classify_misses, line_size),
            stats: MemStats::registered(&obs.metrics),
            per_tile: PerTileMemCounters::registered_lanes(&obs.metrics),
            proc_of_tile: (0..cfg.target.num_tiles).map(|t| cfg.process_of_tile(t)).collect(),
            latency_hist: obs.metrics.sharded_histogram("mem.latency_cycles"),
            tracer: Arc::clone(&obs.tracer),
            hostprof: Arc::clone(&obs.hostprof),
        }
    }

    /// Per-tile counters for the host performance model.
    pub fn per_tile_counters(&self) -> &[PerTileMemCounters] {
        &self.per_tile
    }

    /// Coherence line size in bytes.
    pub fn line_size(&self) -> u32 {
        self.line_size
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// The DRAM controllers (one per tile, or a single one).
    pub fn dram_controllers(&self) -> &[DramController] {
        &self.dram
    }

    fn home_of(&self, line: u64) -> TileId {
        // The directory is uniformly distributed across all tiles (§3.2).
        TileId((line % self.num_tiles as u64) as u32)
    }

    fn controller_of(&self, home: TileId) -> &DramController {
        if self.per_tile_dram {
            &self.dram[home.index()]
        } else {
            &self.dram[0]
        }
    }

    /// One modeled DRAM access at `home`'s controller, attributed to the
    /// `host.mem.dram` stage.
    fn dram_access(&self, home: TileId, est_now: Cycles) -> Cycles {
        let _hp = self.hostprof.span(HostStage::DramModel);
        self.controller_of(home).access(est_now, self.line_size)
    }

    fn shard_index(&self, line: u64) -> usize {
        // Golden-ratio multiply, top bits select: sequential / aligned line
        // indices (the common access pattern) decorrelate across shards
        // instead of convoying onto one. shard_bits == 0 (one shard) shifts
        // by 64, which is UB — special-case it.
        if self.shard_bits == 0 {
            0
        } else {
            (line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - self.shard_bits)) as usize
        }
    }

    fn shard_of(&self, line: u64) -> &DirShard {
        &self.shards[self.shard_index(line)]
    }

    /// Get-or-insert under an already-held map lock, returning the entry's
    /// stable address (entries are boxed and never removed).
    fn entry_ptr(
        map: &mut HashMap<u64, Box<DirEntry>, FxBuildHasher>,
        line: u64,
        num_tiles: u32,
        line_size: u32,
    ) -> *mut DirEntry {
        let boxed =
            map.entry(line).or_insert_with(|| Box::new(DirEntry::new(num_tiles, line_size)));
        &mut **boxed as *mut DirEntry
    }

    /// Retires up to `dir_batch` queued resolutions under the caller's map
    /// lock (flat combining). Every slot store happens while the map lock is
    /// held, so queued stack slots cannot dangle.
    fn drain_pending(
        &self,
        shard: &DirShard,
        map: &mut HashMap<u64, Box<DirEntry>, FxBuildHasher>,
        lane: usize,
    ) {
        if shard.pending_count.load(Ordering::Acquire) == 0 {
            return;
        }
        let _hp = self.hostprof.span(HostStage::BatchDrain);
        let reqs: Vec<PendingDirReq> = {
            let mut pending = shard.pending.lock();
            let n = pending.len().min(self.dir_batch as usize);
            shard.pending_count.fetch_sub(n, Ordering::Release);
            pending.drain(..n).collect()
        };
        if reqs.is_empty() {
            return;
        }
        self.stats.dir_batch_combined.add_owned(lane, reqs.len() as u64);
        for r in reqs {
            let p = Self::entry_ptr(map, r.line, self.num_tiles, self.line_size);
            unsafe { (*r.slot).store(p, Ordering::Release) };
        }
    }

    /// Resolves the directory entry for `line` to a stable pointer, batching
    /// under contention. The caller must already hold per-line exclusivity
    /// (an MSHR entry, or system quiescence) before mutating the entry.
    fn dir_entry_batched(&self, line: u64, lane: usize) -> *mut DirEntry {
        let _hp = self.hostprof.span(HostStage::DirLookup);
        let shard = self.shard_of(line);
        if self.dir_batch == 0 {
            // Combining disabled: plain blocking acquisition.
            let mut map = {
                let _l = self.hostprof.span(HostStage::DirLockWait);
                shard.map.lock()
            };
            return Self::entry_ptr(&mut map, line, self.num_tiles, self.line_size);
        }
        if let Some(mut map) = shard.map.try_lock() {
            self.stats.dir_batch_acquisitions.incr_owned(lane);
            let p = Self::entry_ptr(&mut map, line, self.num_tiles, self.line_size);
            self.drain_pending(shard, &mut map, lane);
            return p;
        }
        // Contended: queue the request; whoever holds the lock serves it.
        // We may not return while the slot is unfilled — the holder owns a
        // raw pointer to it. The wait (spin + possible self-service) counts
        // as directory lock-wait time.
        let _l = self.hostprof.span(HostStage::DirLockWait);
        let slot = AtomicPtr::new(std::ptr::null_mut());
        {
            let mut pending = shard.pending.lock();
            pending.push(PendingDirReq { line, slot: &slot });
            shard.pending_count.fetch_add(1, Ordering::Release);
        }
        loop {
            let p = slot.load(Ordering::Acquire);
            if !p.is_null() {
                return p;
            }
            if let Some(mut map) = shard.map.try_lock() {
                // Lock freed before anyone served us: serve the queue
                // ourselves (our own request is still in it).
                self.stats.dir_batch_acquisitions.incr_owned(lane);
                self.drain_pending(shard, &mut map, lane);
                let p = slot.load(Ordering::Acquire);
                if !p.is_null() {
                    return p;
                }
                // Bounded batch left our request queued; resolve directly.
                // (The queue may still hold our slot — serve it too so no
                // raw pointer outlives this frame.)
                loop {
                    self.drain_pending(shard, &mut map, lane);
                    let p = slot.load(Ordering::Acquire);
                    if !p.is_null() {
                        return p;
                    }
                }
            }
            std::thread::yield_now();
        }
    }

    /// Plain blocking directory lookup that never inserts, for the
    /// functional peek path — peeking absent memory must not grow the
    /// directory (it would change checkpoint bytes).
    fn dir_entry_get(&self, line: u64) -> Option<*mut DirEntry> {
        let mut map = self.shard_of(line).map.lock();
        map.get_mut(&line).map(|b| &mut **b as *mut DirEntry)
    }

    /// Plain blocking get-or-insert without batching or stats attribution,
    /// for the functional poke path.
    fn dir_entry_plain(&self, line: u64) -> *mut DirEntry {
        let mut map = self.shard_of(line).map.lock();
        Self::entry_ptr(&mut map, line, self.num_tiles, self.line_size)
    }

    /// Routes a protocol leg stamped with a tile's real clock (requests,
    /// writebacks); feeds the global-progress window.
    fn route(&self, src: TileId, dst: TileId, bytes: u32, t: Cycles) -> Cycles {
        self.route_flow(src, dst, bytes, t, 0)
    }

    /// Like [`MemorySystem::route`], attributing the leg to a causal flow.
    fn route_flow(&self, src: TileId, dst: TileId, bytes: u32, t: Cycles, flow: u64) -> Cycles {
        let _hp = self.hostprof.span(HostStage::NetModel);
        self.network
            .route_flow(
                TrafficClass::Memory,
                &Packet { src, dst, size_bytes: bytes, send_time: t },
                flow,
            )
            .arrival
    }

    /// Routes a protocol leg stamped with a derived model time (forwards,
    /// invalidations, acks, responses); must not feed the progress window.
    /// The leg is attributed to causal flow `flow` (0 = untracked).
    fn route_derived_flow(
        &self,
        src: TileId,
        dst: TileId,
        bytes: u32,
        t: Cycles,
        flow: u64,
    ) -> Cycles {
        let _hp = self.hostprof.span(HostStage::NetModel);
        self.network
            .route_unobserved_flow(
                TrafficClass::Memory,
                &Packet { src, dst, size_bytes: bytes, send_time: t },
                flow,
            )
            .arrival
    }

    /// Reads `buf.len()` bytes at `addr` on behalf of `tile`, returning the
    /// modeled latency. Splits accesses that span cache lines.
    ///
    /// The dominant case — a `Ctx::load` of an aligned scalar (≤ 8 bytes,
    /// always within one line) — takes the single-segment path: no splitting
    /// loop, line and offset computed once by shift/mask.
    #[inline]
    pub fn read(&self, tile: TileId, now: Cycles, addr: Addr, buf: &mut [u8]) -> Cycles {
        self.read_classified(tile, now, addr, buf).latency
    }

    /// Like [`MemorySystem::read`], but also reports how the latency splits
    /// between local hierarchy and interconnect time (for CPI attribution).
    #[inline]
    pub fn read_classified(
        &self,
        tile: TileId,
        now: Cycles,
        addr: Addr,
        buf: &mut [u8],
    ) -> MemCost {
        let len = buf.len();
        if len > 0 && (addr.0 & self.line_mask) as usize + len <= self.line_size as usize {
            return self.access_line(tile, now, addr, LineOp::Read(buf));
        }
        self.read_multi(tile, now, addr, buf)
    }

    fn read_multi(&self, tile: TileId, now: Cycles, addr: Addr, buf: &mut [u8]) -> MemCost {
        let mut total = MemCost::folded_start();
        let ls = self.line_size as usize;
        let mut done = 0usize;
        while done < buf.len() {
            let a = addr.offset(done as u64);
            let in_line = ls - (a.0 & self.line_mask) as usize;
            let n = in_line.min(buf.len() - done);
            total.fold(self.access_line(
                tile,
                now + total.latency,
                a,
                LineOp::Read(&mut buf[done..done + n]),
            ));
            done += n;
        }
        total
    }

    /// Writes `bytes` at `addr` on behalf of `tile`, returning the modeled
    /// latency. Splits accesses that span cache lines; single-line accesses
    /// (every aligned `Ctx::store` of ≤ 8 bytes) skip the splitting loop.
    #[inline]
    pub fn write(&self, tile: TileId, now: Cycles, addr: Addr, bytes: &[u8]) -> Cycles {
        self.write_classified(tile, now, addr, bytes).latency
    }

    /// Like [`MemorySystem::write`], but also reports how the latency splits
    /// between local hierarchy and interconnect time (for CPI attribution).
    #[inline]
    pub fn write_classified(&self, tile: TileId, now: Cycles, addr: Addr, bytes: &[u8]) -> MemCost {
        let len = bytes.len();
        if len > 0 && (addr.0 & self.line_mask) as usize + len <= self.line_size as usize {
            return self.access_line(tile, now, addr, LineOp::Write(bytes));
        }
        self.write_multi(tile, now, addr, bytes)
    }

    fn write_multi(&self, tile: TileId, now: Cycles, addr: Addr, bytes: &[u8]) -> MemCost {
        let mut total = MemCost::folded_start();
        let ls = self.line_size as usize;
        let mut done = 0usize;
        while done < bytes.len() {
            let a = addr.offset(done as u64);
            let in_line = ls - (a.0 & self.line_mask) as usize;
            let n = in_line.min(bytes.len() - done);
            total.fold(self.access_line(
                tile,
                now + total.latency,
                a,
                LineOp::Write(&bytes[done..done + n]),
            ));
            done += n;
        }
        total
    }

    /// Models an instruction fetch through the (tag-only) L1I; misses charge
    /// the L2 hit latency, assuming code is resident on chip. Miss latency is
    /// charged to the tile's `mem.tile.latency_sum` lane like data accesses.
    pub fn ifetch(&self, tile: TileId, now: Cycles, addr: Addr) -> Cycles {
        let lane = tile.index();
        self.stats.ifetches.incr_owned(lane);
        let mut tm = {
            let _l = self.hostprof.span(HostStage::TileLockWait);
            self.tiles[lane].lock()
        };
        let Some(l1i) = tm.l1i.as_mut() else {
            return Cycles(1);
        };
        let l1i_lat = l1i.access_latency();
        let line = addr.line(l1i.line_size());
        if l1i.lookup(line).is_some() {
            return l1i_lat;
        }
        self.stats.ifetch_misses.incr_owned(lane);
        l1i.insert(line, LineState::Shared, None);
        let l2_lat = tm.l2.as_ref().map(|c| c.access_latency()).unwrap_or(Cycles(8));
        drop(tm);
        let total = l1i_lat + l2_lat;
        self.per_tile[lane].latency_sum.add_owned(total.0);
        self.tracer.emit(tile, now, || TraceEventKind::MemOpDone {
            op: "ifetch",
            addr: addr.0,
            latency: total.0,
            hit: false,
        });
        total
    }

    fn access_line(&self, tile: TileId, now: Cycles, addr: Addr, mut op: LineOp) -> MemCost {
        let line = addr.0 >> self.line_shift;
        let off = (addr.0 & self.line_mask) as usize;
        let lane = tile.index();
        let is_write = op.is_write();
        let op_name = if is_write { "store" } else { "load" };
        if is_write {
            self.stats.stores.incr_owned(lane);
        } else {
            self.stats.loads.incr_owned(lane);
        }
        self.per_tile[lane].accesses.incr_owned();
        // One tracer gate for both endpoint events; disabled tracing costs a
        // single predictable branch per access.
        let tracing = self.tracer.is_enabled();
        // Lock-free read-hit probe: a seqlock-validated scan of the front
        // data cache. Counters, latency, and LRU effect are identical to the
        // locked read-hit path; `false` only ever means "take the slow path".
        if self.read_probe && !is_write {
            if let LineOp::Read(buf) = &mut op {
                let pt = &self.probes[lane];
                if unsafe { Cache::probe_read(pt.cache, &self.tile_seq[lane], line, off, buf) } {
                    self.stats.probe_hits.incr_owned(lane);
                    if pt.is_l1 {
                        self.stats.l1d_hits.incr_owned(lane);
                    } else {
                        self.stats.l2_hits.incr_owned(lane);
                    }
                    if tracing {
                        self.tracer.emit_pair(tile, now, || {
                            (
                                TraceEventKind::MemOpStart { op: op_name, addr: addr.0 },
                                TraceEventKind::MemOpDone {
                                    op: op_name,
                                    addr: addr.0,
                                    latency: pt.lat.0,
                                    hit: true,
                                },
                            )
                        });
                    }
                    let lat = pt.lat;
                    self.stats.latency_sum.add_owned(lane, lat.0);
                    self.per_tile[lane].latency_sum.add_owned(lat.0);
                    self.stats.max_latency.observe_max(lane, lat.0);
                    self.latency_hist.record_owned(lane, lat.0);
                    return MemCost::hit(lat);
                }
            }
        }
        // Fast path: local hit with sufficient permission. Hits and misses
        // record the same metric set (latency sum, per-tile latency, max,
        // histogram), so per-tile means cover every access, not just misses.
        // Hits emit their start/done pair under one tracer-lane acquisition;
        // misses keep separate endpoint events so directory legs traced
        // during the transaction land between them.
        let probed = {
            let _hp = self.hostprof.span(HostStage::LocalProbe);
            self.try_local_hit(tile, line, off, &mut op)
        };
        let cost = match probed {
            Some(lat) => {
                if tracing {
                    self.tracer.emit_pair(tile, now, || {
                        (
                            TraceEventKind::MemOpStart { op: op_name, addr: addr.0 },
                            TraceEventKind::MemOpDone {
                                op: op_name,
                                addr: addr.0,
                                latency: lat.0,
                                hit: true,
                            },
                        )
                    });
                }
                MemCost::hit(lat)
            }
            None => {
                if tracing {
                    self.tracer.emit(tile, now, || TraceEventKind::MemOpStart {
                        op: op_name,
                        addr: addr.0,
                    });
                }
                let (lat, net) = self.miss_transaction(tile, now, line, off, &mut op);
                if tracing {
                    self.tracer.emit(tile, now, || TraceEventKind::MemOpDone {
                        op: op_name,
                        addr: addr.0,
                        latency: lat.0,
                        hit: false,
                    });
                }
                MemCost::miss(lat, net)
            }
        };
        if is_write && self.classifier.enabled() {
            self.classifier.on_write(tile, line, off as u64, op.len() as u64);
        }
        let lat = cost.latency;
        self.stats.latency_sum.add_owned(lane, lat.0);
        self.per_tile[lane].latency_sum.add_owned(lat.0);
        self.stats.max_latency.observe_max(lane, lat.0);
        self.latency_hist.record_owned(lane, lat.0);
        cost
    }

    /// Attempts to satisfy the access from the tile's own hierarchy.
    ///
    /// This is the straight-line section the tile mutex protects on the hot
    /// path: one split borrow of the hierarchy (no repeated
    /// `as_ref().unwrap()` re-probes), a single tag scan per level (`lookup`
    /// returns the line, so no second `peek_mut` scan to apply the data op),
    /// and no heap allocation.
    fn try_local_hit(
        &self,
        tile: TileId,
        line: u64,
        off: usize,
        op: &mut LineOp,
    ) -> Option<Cycles> {
        let lane = tile.index();
        let is_write = op.is_write();
        let seq = &self.tile_seq[lane];
        let mut guard = {
            let _l = self.hostprof.span(HostStage::TileLockWait);
            self.tiles[lane].lock()
        };
        let TileMem { l1d, l2, pool, .. } = &mut *guard;
        if let (Some(l1d), Some(l2)) = (l1d.as_mut(), l2.as_mut()) {
            let l1_lat = l1d.access_latency();
            if let Some(l1_line) = l1d.lookup(line) {
                let state = l1_line.state;
                if is_write && !state.writable() {
                    return None; // upgrade required
                }
                if let LineOp::Read(buf) = op {
                    let data = l1_line.data.as_ref().unwrap();
                    buf.copy_from_slice(&data[off..off + buf.len()]);
                } else {
                    if state == LineState::Exclusive {
                        self.stats.silent_upgrades.incr_owned(lane);
                    }
                    let l2_line = l2.peek_mut(line).expect("inclusion: L1 ⊆ L2");
                    seq.begin_write();
                    Self::write_through(l1_line, l2_line, off, op);
                    seq.end_write();
                }
                self.stats.l1d_hits.incr_owned(lane);
                return Some(l1_lat);
            }
            let l2_lat = l2.access_latency();
            let l2_line = l2.lookup(line)?;
            let state = l2_line.state;
            if is_write && !state.writable() {
                return None;
            }
            // Apply on the authoritative L2 copy, then refill L1 with the
            // resulting line (write-through keeps L2 current, so L1
            // evictions are silent). The refill mutates L1 structurally, so
            // the whole block is one probe-excluding write section.
            seq.begin_write();
            let fill_state = match op {
                LineOp::Read(buf) => {
                    let data = l2_line.data.as_ref().unwrap();
                    buf.copy_from_slice(&data[off..off + buf.len()]);
                    state
                }
                _ => {
                    if state == LineState::Exclusive {
                        self.stats.silent_upgrades.incr_owned(lane);
                    }
                    l2_line.state = LineState::Modified;
                    let data = l2_line.data.as_mut().unwrap();
                    match op {
                        LineOp::Write(bytes) => data[off..off + bytes.len()].copy_from_slice(bytes),
                        LineOp::Rmw { old, f } => apply_rmw(data, off, old, *f),
                        LineOp::Read(_) => unreachable!("handled above"),
                    }
                    LineState::Modified
                }
            };
            let mut bx = pool.pop().unwrap_or_else(|| vec![0u8; self.line_size as usize].into());
            bx.copy_from_slice(l2_line.data.as_deref().unwrap());
            debug_assert!(l1d.peek(line).is_none(), "L1 lookup above already missed");
            if let Some(ev) = l1d.insert(line, fill_state, Some(bx)) {
                if let Some(d) = ev.data {
                    pool.push(d); // never free a probe-visible buffer
                }
            }
            seq.end_write();
            self.stats.l2_hits.incr_owned(lane);
            Some(l1_lat + l2_lat)
        } else {
            let coh = l2.as_mut().or(l1d.as_mut()).expect("validated: some cache level");
            let lat = coh.access_latency();
            let entry = coh.lookup(line)?;
            if is_write && !entry.state.writable() {
                return None;
            }
            match op {
                LineOp::Read(buf) => {
                    let data = entry.data.as_ref().unwrap();
                    buf.copy_from_slice(&data[off..off + buf.len()]);
                }
                LineOp::Write(bytes) => {
                    if entry.state == LineState::Exclusive {
                        self.stats.silent_upgrades.incr_owned(lane);
                    }
                    seq.begin_write();
                    entry.state = LineState::Modified;
                    entry.data.as_mut().unwrap()[off..off + bytes.len()].copy_from_slice(bytes);
                    seq.end_write();
                }
                LineOp::Rmw { old, f } => {
                    if entry.state == LineState::Exclusive {
                        self.stats.silent_upgrades.incr_owned(lane);
                    }
                    seq.begin_write();
                    entry.state = LineState::Modified;
                    apply_rmw(entry.data.as_mut().unwrap(), off, old, *f);
                    seq.end_write();
                }
            }
            self.stats.l2_hits.incr_owned(lane);
            Some(lat)
        }
    }

    /// Applies a write (or RMW) to both copies of a write-through pair: the
    /// L2 copy is authoritative; the resulting window propagates into L1.
    fn write_through(l1: &mut CacheLine, l2: &mut CacheLine, off: usize, op: &mut LineOp) {
        let n = op.len();
        debug_assert!(l2.state.writable(), "write-through needs write permission");
        l2.state = LineState::Modified;
        let l2_data = l2.data.as_mut().unwrap();
        match op {
            LineOp::Write(bytes) => l2_data[off..off + n].copy_from_slice(bytes),
            LineOp::Rmw { old, f } => apply_rmw(l2_data, off, old, *f),
            LineOp::Read(_) => unreachable!("reads are served from L1"),
        }
        l1.state = LineState::Modified;
        l1.data.as_mut().unwrap()[off..off + n].copy_from_slice(&l2_data[off..off + n]);
    }

    /// The slow path: evictions, then one directory transaction. Returns the
    /// total latency and the share spent on interconnect legs of the
    /// requester's critical path (request out, response back) — the memory
    /// system's input to CPI attribution.
    fn miss_transaction(
        &self,
        tile: TileId,
        now: Cycles,
        line: u64,
        off: usize,
        op: &mut LineOp,
    ) -> (Cycles, Cycles) {
        let _miss = self.hostprof.span(HostStage::MissTotal);
        let lane = tile.index();
        let mut first_attempt = true;
        loop {
            if !first_attempt {
                // We waited out someone else's transaction on this line (or
                // lost a race and released); their fill usually turned our
                // miss into a local hit.
                let retry_hit = {
                    let _hp = self.hostprof.span(HostStage::LocalProbe);
                    self.try_local_hit(tile, line, off, op)
                };
                if let Some(lat) = retry_hit {
                    return (lat, Cycles::ZERO);
                }
            }
            first_attempt = false;
            // Phase 1: make room in the coherence cache. Each eviction is
            // its own MSHR-scoped transaction, run *before* this line's
            // registration — holding two in-flight entries at once could
            // deadlock (tile A fills X evicting Y while tile B fills Y
            // evicting X).
            {
                let _hp = self.hostprof.span(HostStage::LruScan);
                loop {
                    let victim = {
                        let mut tm = {
                            let _l = self.hostprof.span(HostStage::TileLockWait);
                            self.tiles[lane].lock()
                        };
                        tm.coh().pending_victim(line).map(|l| l.line)
                    };
                    match victim {
                        None => break,
                        Some(vline) => self.evict_line(tile, now, vline),
                    }
                }
            }
            // Phase 2: register the miss. A secondary miss on a line already
            // in flight blocks here (without inserting) and retries; the
            // retry's local probe coalesces it onto the finished fill.
            let acquired = {
                let _hp = self.hostprof.span(HostStage::MshrProbe);
                self.mshr.try_acquire_or_wait(line, tile)
            };
            let guard = match acquired {
                Ok(g) => g,
                Err(MshrWait::SameTile) if self.mshr_entries > 0 => {
                    self.stats.mshr_coalesced.incr_owned(lane);
                    continue;
                }
                Err(_) => {
                    self.stats.mshr_conflict_waits.incr_owned(lane);
                    continue;
                }
            };
            if guard.stalled() {
                self.stats.mshr_stall_full.incr_owned(lane);
            }
            // Safety: we hold the line's MSHR entry, so no other transaction
            // can touch this directory entry until the guard drops.
            let entry = unsafe { &mut *self.dir_entry_batched(line, lane) };
            // A same-tile sibling may have filled the line between our probe
            // and the registration; while we hold the MSHR the directory is
            // stable ground truth, so release and retry — the re-probe hits.
            let already_ours = match entry.state {
                DirState::Owned(o) => o == tile,
                DirState::Shared => !op.is_write() && entry.sharers.contains(tile),
                DirState::Uncached => false,
            };
            // A sibling fill may also have consumed the way Phase 1 freed.
            // Staging the fill buffer is part of the fill's host cost.
            let fill_buf = if already_ours {
                None
            } else {
                let _hp = self.hostprof.span(HostStage::MissFill);
                let mut tm = {
                    let _l = self.hostprof.span(HostStage::TileLockWait);
                    self.tiles[lane].lock()
                };
                if tm.coh().pending_victim(line).is_some() {
                    None
                } else {
                    Some(tm.pool_take())
                }
            };
            let Some(fill_buf) = fill_buf else {
                drop(guard);
                continue;
            };
            let result = {
                let _hp = self.hostprof.span(HostStage::DirTxn);
                self.run_directory_transaction(tile, now, line, off, op, entry, fill_buf)
            };
            {
                // Releasing the entry wakes coalesced waiters — MSHR work.
                let _hp = self.hostprof.span(HostStage::MshrProbe);
                drop(guard);
            }
            return result;
        }
    }

    /// Runs one directory transaction for a registered miss. The caller
    /// holds the line's MSHR entry (granting exclusive use of `entry`) and
    /// has guaranteed room in the requester's coherence cache. `fill_buf`
    /// stages the line's bytes; the upgrade path returns it to the pool.
    #[allow(clippy::too_many_arguments)]
    fn run_directory_transaction(
        &self,
        tile: TileId,
        now: Cycles,
        line: u64,
        off: usize,
        op: &mut LineOp,
        entry: &mut DirEntry,
        mut fill_buf: Box<[u8]>,
    ) -> (Cycles, Cycles) {
        let home = self.home_of(line);
        let is_write = op.is_write();
        self.per_tile[tile.index()].transactions.incr_owned();
        if self.proc_of_tile[tile.index()] != self.proc_of_tile[home.index()] {
            self.per_tile[tile.index()].remote_home_transactions.incr_owned();
        }
        let lookup_lat = self.miss_lookup_lat;
        let t0 = now + lookup_lat;

        // Mint a causal flow ID for this transaction; every protocol leg it
        // generates carries the ID, so the profiler can reassemble the whole
        // remote access as one span tree. Flow 0 means tracing is off.
        let flow = if self.tracer.flows_enabled() { self.tracer.next_flow_id() } else { 0 };
        if flow != 0 {
            self.tracer.emit(tile, now, || TraceEventKind::FlowSend {
                flow,
                dst: home.0,
                kind: "mem_miss",
            });
        }

        debug_assert!(entry.invariants_hold());

        // Request travels tile -> home.
        let t_req = self.route_flow(tile, home, CTRL_MSG_BYTES, t0, flow);
        let mut t_home = t_req + DIR_LATENCY;
        self.tracer.emit(tile, t0, || TraceEventKind::DirLeg {
            leg: "request",
            addr: line * self.line_size as u64,
            home: home.0,
        });

        // LimitLESS: overflowing the hardware pointers traps to software.
        if let CoherenceScheme::Limitless { sharers: hw, trap_cycles } = self.scheme {
            let overflowed = match entry.state {
                DirState::Shared => entry.sharers.count() >= hw,
                _ => false,
            };
            if overflowed {
                self.stats.limitless_traps.incr_owned(tile.index());
                t_home += Cycles(trap_cycles);
                self.tracer.emit(tile, t_home, || TraceEventKind::DirLeg {
                    leg: "limitless_trap",
                    addr: line * self.line_size as u64,
                    home: home.0,
                });
            }
        }

        // Queue models are referenced against the *global-progress estimate*,
        // not this requester's own (possibly far-skewed) timestamp — the
        // paper's queue-modeling rule (§3.6.1). Using the requester's clock
        // would convert clock skew into phantom queueing delay.
        let est_now = self.network.progress().estimate();
        let mut data_ready = t_home;
        let mut fill_state = if is_write { LineState::Modified } else { LineState::Shared };
        let mut fill_src: Option<FillSrc> = None;
        let mut resp_bytes = self.line_size + DATA_HDR_BYTES;
        let mut counted_upgrade = false;

        match (entry.state, is_write) {
            (DirState::Uncached, _) => {
                let dram_lat = self.dram_access(home, est_now);
                self.stats.dram_reads.incr_owned(tile.index());
                data_ready = t_home + dram_lat;
                fill_src = Some(FillSrc::Home);
                entry.state = if is_write {
                    DirState::Owned(tile)
                } else if self.protocol == CacheProtocol::Mesi {
                    // MESI: the sole reader takes the line Exclusive and may
                    // later write it without another directory transaction.
                    self.stats.exclusive_grants.incr_owned(tile.index());
                    fill_state = LineState::Exclusive;
                    DirState::Owned(tile)
                } else {
                    entry.sharers.insert(tile);
                    DirState::Shared
                };
            }
            (DirState::Shared, false) => {
                // DirNB: a full pointer set forces eviction of one sharer.
                // The victim is chosen in ring order after the requester so
                // victimization spreads over tiles (a fixed choice would
                // thrash one tile and leave the rest permanently cached,
                // hiding the protocol's serialization).
                if let CoherenceScheme::DirNB { sharers: limit } = self.scheme {
                    if !entry.sharers.contains(tile) && entry.sharers.count() >= limit {
                        let victim = entry
                            .sharers
                            .iter()
                            .find(|&s| s > tile)
                            .or_else(|| entry.sharers.iter().find(|&s| s != tile))
                            .expect("non-empty");
                        entry.sharers.remove(victim);
                        self.stats.forced_evictions.incr_owned(tile.index());
                        self.stats.invalidations.incr_owned(tile.index());
                        {
                            let mut vt = self.lock_tile(victim);
                            let seq = &self.tile_seq[victim.index()];
                            seq.begin_write();
                            if let Some((_, Some(d))) = vt.purge(line) {
                                vt.recycle(d);
                            }
                            seq.end_write();
                        }
                        self.classifier.on_departure(victim, line, true);
                        let t_inv =
                            self.route_derived_flow(home, victim, CTRL_MSG_BYTES, t_home, flow);
                        let t_ack = self.route_derived_flow(
                            victim,
                            home,
                            CTRL_MSG_BYTES,
                            t_inv + Cycles(1),
                            flow,
                        );
                        data_ready = data_ready.max(t_ack);
                    }
                }
                let dram_lat = self.dram_access(home, est_now);
                self.stats.dram_reads.incr_owned(tile.index());
                data_ready = data_ready.max(t_home + dram_lat);
                fill_src = Some(FillSrc::Home);
                entry.sharers.insert(tile);
            }
            (DirState::Shared, true) => {
                let was_sharer = entry.sharers.contains(tile);
                // Invalidate every other sharer; latency is the slowest ack.
                let others: Vec<TileId> = entry.sharers.iter().filter(|&s| s != tile).collect();
                let mut t_inv_done = t_home;
                for s in &others {
                    self.stats.invalidations.incr_owned(tile.index());
                    {
                        let mut st = self.lock_tile(*s);
                        let seq = &self.tile_seq[s.index()];
                        seq.begin_write();
                        if let Some((_, Some(d))) = st.purge(line) {
                            st.recycle(d);
                        }
                        seq.end_write();
                    }
                    self.classifier.on_departure(*s, line, true);
                    let t_inv = self.route_derived_flow(home, *s, CTRL_MSG_BYTES, t_home, flow);
                    let t_ack =
                        self.route_derived_flow(*s, home, CTRL_MSG_BYTES, t_inv + Cycles(1), flow);
                    t_inv_done = t_inv_done.max(t_ack);
                }
                entry.sharers.clear();
                entry.state = DirState::Owned(tile);
                if was_sharer {
                    // Upgrade: data already resident, permission-only reply.
                    self.stats.upgrades.incr_owned(tile.index());
                    self.tracer.emit(tile, t_home, || TraceEventKind::DirLeg {
                        leg: "upgrade",
                        addr: line * self.line_size as u64,
                        home: home.0,
                    });
                    counted_upgrade = true;
                    resp_bytes = CTRL_MSG_BYTES;
                    data_ready = t_inv_done;
                } else {
                    let dram_lat = self.dram_access(home, est_now);
                    self.stats.dram_reads.incr_owned(tile.index());
                    data_ready = t_inv_done.max(t_home + dram_lat);
                    fill_src = Some(FillSrc::Home);
                }
            }
            (DirState::Owned(owner), _) => {
                debug_assert_ne!(owner, tile, "caller filters same-tile ownership");
                // Forward to owner; owner supplies data (if dirty) and is
                // downgraded (read) or invalidated (write); home memory is
                // updated on a dirty transfer. The owner's bytes are staged
                // directly into the requester's fill buffer at owner-lock
                // time, so the fill block needs no second copy.
                self.stats.remote_fills.incr_owned(tile.index());
                self.tracer.emit(tile, t_home, || TraceEventKind::DirLeg {
                    leg: "remote_fill",
                    addr: line * self.line_size as u64,
                    home: home.0,
                });
                let was_dirty = {
                    let mut ot = self.lock_tile(owner);
                    if is_write {
                        self.stats.invalidations.incr_owned(tile.index());
                        let seq = &self.tile_seq[owner.index()];
                        seq.begin_write();
                        let (st, data) = ot.purge(line).expect("owner holds the line");
                        let data = data.expect("coherence cache stores data");
                        fill_buf.copy_from_slice(&data);
                        ot.recycle(data);
                        seq.end_write();
                        self.classifier.on_departure(owner, line, true);
                        st == LineState::Modified
                    } else {
                        // Downgrade owner to Shared at every level. State
                        // changes leave data bytes and placement intact, so
                        // no probe-excluding write section is needed.
                        let coh = ot.coh();
                        let l = coh.peek_mut(line).expect("owner holds the line");
                        let was_dirty = l.state == LineState::Modified;
                        l.state = LineState::Shared;
                        fill_buf.copy_from_slice(l.data.as_deref().expect("coh stores data"));
                        if ot.has_l1_filter() {
                            if let Some(l1) = ot.l1d.as_mut().unwrap().peek_mut(line) {
                                l1.state = LineState::Shared;
                            }
                        }
                        was_dirty
                    }
                };
                if was_dirty {
                    self.stats.writebacks.incr_owned(tile.index());
                    entry.data.copy_from_slice(&fill_buf);
                    // Home memory is updated in parallel with the response;
                    // the write occupies the controller off the critical path.
                    let _ = self.dram_access(home, est_now);
                }
                let t_fwd = self.route_derived_flow(home, owner, CTRL_MSG_BYTES, t_home, flow);
                let xfer = if was_dirty { self.line_size + DATA_HDR_BYTES } else { CTRL_MSG_BYTES };
                let t_data = self.route_derived_flow(owner, home, xfer, t_fwd + Cycles(2), flow);
                data_ready = t_data + DIR_LATENCY;
                fill_src = Some(FillSrc::Staged);
                if is_write {
                    entry.state = DirState::Owned(tile);
                } else {
                    entry.state = DirState::Shared;
                    entry.sharers.insert(owner);
                    entry.sharers.insert(tile);
                    fill_state = LineState::Shared;
                }
            }
        }
        debug_assert!(entry.invariants_hold());

        if flow != 0 {
            // The directory-service span: starts when the request arrived at
            // the home tile, ends when the data (or permission) is ready to
            // ship back.
            let ready = data_ready;
            self.tracer.emit(home, t_req, || TraceEventKind::FlowService {
                flow,
                home: home.0,
                ready: ready.0,
            });
        }

        // Response travels home -> tile; fill and apply the operation.
        let t_resp = self.route_derived_flow(home, tile, resp_bytes, data_ready, flow);
        {
            let _fill = self.hostprof.span(HostStage::MissFill);
            let mut tm = {
                let _l = self.hostprof.span(HostStage::TileLockWait);
                self.tiles[tile.index()].lock()
            };
            let seq = &self.tile_seq[tile.index()];
            if counted_upgrade {
                // Permission upgrade: set Modified at every level.
                seq.begin_write();
                let coh = tm.coh();
                if let Some(l) = coh.peek_mut(line) {
                    l.state = LineState::Modified;
                } else {
                    // Raced with an invalidation after the directory decided;
                    // cannot happen because we hold the line's MSHR entry
                    // from the decision to here.
                    unreachable!("upgraded line vanished while MSHR entry held");
                }
                if tm.has_l1_filter() {
                    if let Some(l1) = tm.l1d.as_mut().unwrap().peek_mut(line) {
                        l1.state = LineState::Modified;
                    }
                }
                Self::apply_write_everywhere(&mut tm, line, off, op);
                seq.end_write();
                tm.recycle(fill_buf);
            } else {
                self.stats.misses.incr_owned(tile.index());
                if let Some(kind) =
                    self.classifier.classify_fill(tile, line, off as u64, op.len() as u64)
                {
                    self.stats.record_kind(tile.index(), kind);
                }
                // Stage the fill without intermediate allocations: a
                // home-copy fill copies into the pooled fill buffer here; an
                // owner-supplied fill was staged into it at owner-lock time.
                match fill_src.expect("miss path always has data") {
                    FillSrc::Home => fill_buf.copy_from_slice(&entry.data),
                    FillSrc::Staged => {}
                }
                match op {
                    LineOp::Write(bytes) => {
                        fill_buf[off..off + bytes.len()].copy_from_slice(bytes);
                    }
                    LineOp::Rmw { old, f } => apply_rmw(&mut fill_buf, off, old, *f),
                    LineOp::Read(buf) => buf.copy_from_slice(&fill_buf[off..off + buf.len()]),
                }
                let TileMem { l1d, l2, pool, .. } = &mut *tm;
                seq.begin_write();
                if l2.is_some() {
                    if let Some(l1) = l1d.as_mut() {
                        if l1.peek(line).is_none() {
                            let mut bx = pool
                                .pop()
                                .unwrap_or_else(|| vec![0u8; self.line_size as usize].into());
                            bx.copy_from_slice(&fill_buf);
                            // L1 victim needs no writeback (write-through).
                            if let Some(ev) = l1.insert(line, fill_state, Some(bx)) {
                                if let Some(d) = ev.data {
                                    pool.push(d);
                                }
                            }
                        }
                    }
                }
                let coh = l2.as_mut().or(l1d.as_mut()).expect("some cache level");
                debug_assert!(coh.peek(line).is_none(), "room guaranteed at registration");
                let evicted = coh.insert(line, fill_state, Some(fill_buf));
                assert!(evicted.is_none(), "miss fill found no room (unsupported same-tile race)");
                seq.end_write();
            }
        }
        let latency = t_resp.saturating_sub(now).max(lookup_lat);
        let network = t_req.saturating_sub(t0) + t_resp.saturating_sub(data_ready);
        if flow != 0 {
            self.tracer
                .emit(tile, t_resp, || TraceEventKind::FlowReply { flow, latency: latency.0 });
        }
        (latency, network)
    }

    fn apply_write_everywhere(tm: &mut TileMem, line: u64, off: usize, op: &mut LineOp) {
        let n = op.len();
        let TileMem { l1d, l2, scratch, .. } = tm;
        let coh = l2.as_mut().or(l1d.as_mut()).expect("validated: some cache level exists");
        let l = coh.peek_mut(line).expect("upgrade target resident");
        let data = l.data.as_mut().unwrap();
        match op {
            LineOp::Write(bytes) => data[off..off + n].copy_from_slice(bytes),
            LineOp::Rmw { old, f } => apply_rmw(data, off, old, *f),
            LineOp::Read(_) => unreachable!("upgrade is always a write"),
        }
        // Propagate the resulting window into the L1 copy via the scratch
        // buffer (an RMW closure must not be applied twice).
        scratch[..n].copy_from_slice(&data[off..off + n]);
        if l2.is_some() {
            if let Some(l1) = l1d.as_mut().and_then(|c| c.peek_mut(line)) {
                l1.state = LineState::Modified;
                l1.data.as_mut().unwrap()[off..off + n].copy_from_slice(&scratch[..n]);
            }
        }
    }

    fn lock_tile(&self, t: TileId) -> MutexGuard<'_, TileMem> {
        let _hp = self.hostprof.span(HostStage::TileLockWait);
        self.tiles[t.index()].lock()
    }

    /// Evicts `vline` from `tile`'s hierarchy as its own directory
    /// transaction (writeback if dirty, sharer removal otherwise). Waits out
    /// any in-flight transaction on the victim line, then owns it for the
    /// duration via an MSHR service entry.
    fn evict_line(&self, tile: TileId, now: Cycles, vline: u64) {
        let lane = tile.index();
        let guard = {
            let _hp = self.hostprof.span(HostStage::MshrProbe);
            self.mshr.acquire_service(vline)
        };
        let (state, data) = {
            let mut tm = {
                let _l = self.hostprof.span(HostStage::TileLockWait);
                self.tiles[lane].lock()
            };
            let seq = &self.tile_seq[lane];
            seq.begin_write();
            let purged = tm.purge(vline);
            seq.end_write();
            match purged {
                Some(p) => p,
                None => return, // invalidated while we waited for the entry
            }
        };
        self.classifier.on_departure(tile, vline, false);
        let home = self.home_of(vline);
        // Safety: the MSHR service entry grants exclusive use of the
        // directory entry until `guard` drops.
        let entry = unsafe { &mut *self.dir_entry_batched(vline, lane) };
        let leftover = match state {
            LineState::Modified => {
                debug_assert_eq!(entry.state, DirState::Owned(tile));
                let d = data.expect("coherence cache stores data");
                entry.data.copy_from_slice(&d);
                entry.state = DirState::Uncached;
                self.stats.writebacks.incr_owned(lane);
                self.tracer.emit(tile, now, || TraceEventKind::DirLeg {
                    leg: "writeback",
                    addr: vline * self.line_size as u64,
                    home: home.0,
                });
                // Writeback traffic: data to home, then a DRAM write. Off the
                // requester's critical path, but it loads the network links
                // and the controller queue.
                let _ = self.route(tile, home, self.line_size + DATA_HDR_BYTES, now);
                let est = self.network.progress().estimate();
                let _ = self.dram_access(home, est);
                Some(d)
            }
            LineState::Exclusive => {
                // Clean sole copy: notify the directory, no data transfer.
                debug_assert_eq!(entry.state, DirState::Owned(tile));
                entry.state = DirState::Uncached;
                let _ = self.route(tile, home, CTRL_MSG_BYTES, now);
                data
            }
            LineState::Shared => {
                // Notify the directory so the sharer set stays exact.
                entry.sharers.remove(tile);
                if entry.sharers.is_empty() && entry.state == DirState::Shared {
                    entry.state = DirState::Uncached;
                }
                let _ = self.route(tile, home, CTRL_MSG_BYTES, now);
                data
            }
        };
        debug_assert!(entry.invariants_hold());
        if let Some(d) = leftover {
            self.lock_tile(tile).recycle(d);
        }
        drop(guard);
    }

    /// Atomically reads a little-endian `u32` at `addr` and replaces it with
    /// `f(old)`, holding the line with write permission for the whole
    /// operation — the simulated equivalent of a locked RMW instruction.
    /// Returns the previous value and the modeled latency.
    ///
    /// Used by the futex emulation and the guest synchronization primitives.
    ///
    /// # Panics
    ///
    /// Panics if the access crosses a cache-line boundary.
    pub fn fetch_update_u32<F>(&self, tile: TileId, now: Cycles, addr: Addr, f: F) -> (u32, Cycles)
    where
        F: FnMut(u32) -> u32,
    {
        let (old, cost) = self.fetch_update_u32_classified(tile, now, addr, f);
        (old, cost.latency)
    }

    /// Like [`MemorySystem::fetch_update_u32`], but reports the latency split
    /// (for CPI attribution).
    ///
    /// # Panics
    ///
    /// Panics if the access crosses a cache-line boundary.
    pub fn fetch_update_u32_classified<F>(
        &self,
        tile: TileId,
        now: Cycles,
        addr: Addr,
        mut f: F,
    ) -> (u32, MemCost)
    where
        F: FnMut(u32) -> u32,
    {
        assert!(
            addr.0 % self.line_size as u64 + 4 <= self.line_size as u64,
            "atomic access must not cross a line boundary"
        );
        let mut old = [0u8; 4];
        let mut apply = |window: &mut [u8]| {
            let cur = u32::from_le_bytes(window.try_into().expect("4-byte window"));
            window.copy_from_slice(&f(cur).to_le_bytes());
        };
        let cost = self.access_line(tile, now, addr, LineOp::Rmw { old: &mut old, f: &mut apply });
        (u32::from_le_bytes(old), cost)
    }

    /// 64-bit variant of [`MemorySystem::fetch_update_u32`].
    ///
    /// # Panics
    ///
    /// Panics if the access crosses a cache-line boundary.
    pub fn fetch_update_u64<F>(&self, tile: TileId, now: Cycles, addr: Addr, f: F) -> (u64, Cycles)
    where
        F: FnMut(u64) -> u64,
    {
        let (old, cost) = self.fetch_update_u64_classified(tile, now, addr, f);
        (old, cost.latency)
    }

    /// Like [`MemorySystem::fetch_update_u64`], but reports the latency split
    /// (for CPI attribution).
    ///
    /// # Panics
    ///
    /// Panics if the access crosses a cache-line boundary.
    pub fn fetch_update_u64_classified<F>(
        &self,
        tile: TileId,
        now: Cycles,
        addr: Addr,
        mut f: F,
    ) -> (u64, MemCost)
    where
        F: FnMut(u64) -> u64,
    {
        assert!(
            addr.0 % self.line_size as u64 + 8 <= self.line_size as u64,
            "atomic access must not cross a line boundary"
        );
        let mut old = [0u8; 8];
        let mut apply = |window: &mut [u8]| {
            let cur = u64::from_le_bytes(window.try_into().expect("8-byte window"));
            window.copy_from_slice(&f(cur).to_le_bytes());
        };
        let cost = self.access_line(tile, now, addr, LineOp::Rmw { old: &mut old, f: &mut apply });
        (u64::from_le_bytes(old), cost)
    }

    /// Functional read bypassing all timing (used by the MCP for syscall
    /// emulation and by tests). Returns zeros for untouched memory.
    pub fn peek_bytes(&self, addr: Addr, buf: &mut [u8]) {
        let ls = self.line_size as u64;
        let mut done = 0usize;
        while done < buf.len() {
            let a = addr.offset(done as u64);
            let line = a.line(self.line_size);
            let off = (a.0 % ls) as usize;
            let n = ((ls as usize) - off).min(buf.len() - done);
            // Wait out any in-flight transaction on this line, then hold the
            // entry so the owner/home copy cannot move mid-read.
            let _svc = self.mshr.acquire_service(line);
            match self.dir_entry_get(line) {
                // Safety: the MSHR service entry grants exclusive use.
                Some(p) => match unsafe { &*p }.state {
                    DirState::Owned(owner) => {
                        let mut ot = self.lock_tile(owner);
                        let l = ot.coh().peek_mut(line).expect("owner holds line");
                        let data = l.data.as_ref().unwrap();
                        buf[done..done + n].copy_from_slice(&data[off..off + n]);
                    }
                    _ => {
                        let entry = unsafe { &*p };
                        buf[done..done + n].copy_from_slice(&entry.data[off..off + n]);
                    }
                },
                None => buf[done..done + n].fill(0),
            }
            done += n;
        }
    }

    /// Functional write bypassing all timing; keeps every cached copy
    /// coherent by updating sharers in place.
    pub fn poke_bytes(&self, addr: Addr, bytes: &[u8]) {
        let ls = self.line_size as u64;
        let mut done = 0usize;
        while done < bytes.len() {
            let a = addr.offset(done as u64);
            let line = a.line(self.line_size);
            let off = (a.0 % ls) as usize;
            let n = ((ls as usize) - off).min(bytes.len() - done);
            // Hold the line's MSHR entry so no transaction moves copies
            // around while we patch every cached copy in place.
            let _svc = self.mshr.acquire_service(line);
            // Safety: the MSHR service entry grants exclusive use.
            let entry = unsafe { &mut *self.dir_entry_plain(line) };
            match entry.state {
                DirState::Owned(owner) => {
                    let mut ot = self.lock_tile(owner);
                    let seq = &self.tile_seq[owner.index()];
                    seq.begin_write();
                    let has_filter = ot.has_l1_filter();
                    if has_filter {
                        if let Some(l1) = ot.l1d.as_mut().unwrap().peek_mut(line) {
                            l1.data.as_mut().unwrap()[off..off + n]
                                .copy_from_slice(&bytes[done..done + n]);
                        }
                    }
                    let l = ot.coh().peek_mut(line).expect("owner holds line");
                    l.data.as_mut().unwrap()[off..off + n].copy_from_slice(&bytes[done..done + n]);
                    seq.end_write();
                    // Keep the home copy current too: an Exclusive owner
                    // evicts silently without a writeback.
                    entry.data[off..off + n].copy_from_slice(&bytes[done..done + n]);
                }
                DirState::Shared => {
                    entry.data[off..off + n].copy_from_slice(&bytes[done..done + n]);
                    for s in entry.sharers.iter().collect::<Vec<_>>() {
                        let mut st = self.lock_tile(s);
                        let seq = &self.tile_seq[s.index()];
                        seq.begin_write();
                        let has_filter = st.has_l1_filter();
                        if has_filter {
                            if let Some(l1) = st.l1d.as_mut().unwrap().peek_mut(line) {
                                l1.data.as_mut().unwrap()[off..off + n]
                                    .copy_from_slice(&bytes[done..done + n]);
                            }
                        }
                        if let Some(l) = st.coh().peek_mut(line) {
                            l.data.as_mut().unwrap()[off..off + n]
                                .copy_from_slice(&bytes[done..done + n]);
                        }
                        seq.end_write();
                    }
                }
                DirState::Uncached => {
                    entry.data[off..off + n].copy_from_slice(&bytes[done..done + n]);
                }
            }
            done += n;
        }
    }

    /// Walks every directory entry and checks that directory state and cache
    /// contents agree exactly (the MSI invariant set). Intended for tests
    /// while the system is quiescent.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn verify_coherence_invariants(&self) -> Result<(), String> {
        for shard in &self.shards {
            let shard = shard.map.lock();
            for (&line, entry) in shard.iter() {
                if !entry.invariants_hold() {
                    return Err(format!("line {line}: directory invariants violated"));
                }
                match entry.state {
                    DirState::Owned(owner) => {
                        for t in 0..self.num_tiles {
                            let mut tm = self.tiles[t as usize].lock();
                            let held = tm.coh().peek(line).map(|l| l.state);
                            if TileId(t) == owner {
                                let ok = match self.protocol {
                                    CacheProtocol::Msi => held == Some(LineState::Modified),
                                    CacheProtocol::Mesi => {
                                        matches!(
                                            held,
                                            Some(LineState::Modified | LineState::Exclusive)
                                        )
                                    }
                                };
                                if !ok {
                                    return Err(format!(
                                        "line {line}: owner tile{t} holds {held:?}, want M/E"
                                    ));
                                }
                            } else if held.is_some() {
                                return Err(format!(
                                    "line {line}: tile{t} holds copy while Owned elsewhere"
                                ));
                            }
                        }
                    }
                    DirState::Shared => {
                        for t in 0..self.num_tiles {
                            let mut tm = self.tiles[t as usize].lock();
                            let held = tm.coh().peek(line).map(|l| l.state);
                            let is_sharer = entry.sharers.contains(TileId(t));
                            match (is_sharer, held) {
                                (true, Some(LineState::Shared)) => {}
                                (false, None) => {}
                                // MSI never leaves E copies; guard it.
                                other => {
                                    return Err(format!(
                                        "line {line}: tile{t} sharer={is_sharer} holds {other:?}"
                                    ));
                                }
                            }
                        }
                    }
                    DirState::Uncached => {
                        for t in 0..self.num_tiles {
                            let mut tm = self.tiles[t as usize].lock();
                            if tm.coh().peek(line).is_some() {
                                return Err(format!(
                                    "line {line}: tile{t} holds copy of Uncached line"
                                ));
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Test/bench helper: performs `n` random single-word accesses from one
    /// tile and returns total latency. Exercises the full protocol.
    pub fn random_access_storm(&self, tile: TileId, seed: u64, span: u64, n: u64) -> Cycles {
        let mut rng = SimRng::new(seed);
        let mut now = Cycles::ZERO;
        let mut buf = [0u8; 8];
        for _ in 0..n {
            let addr = Addr(rng.gen_range(span) & !7);
            if rng.gen_bool(0.3) {
                now += self.write(tile, now, addr, &buf);
            } else {
                now += self.read(tile, now, addr, &mut buf);
            }
        }
        now
    }
}

/// Checkpointing the memory subsystem captures everything the functional
/// simulation depends on — every cache array (tags, MSI/MESI state, LRU
/// stamps, and the application's real bytes), every directory entry (the DRAM
/// home copies), the DRAM controller queue clocks, and the miss-classifier
/// history — so that a restored simulation observes identical contents *and*
/// identical timing.
///
/// The system must be quiescent (no in-flight transactions) during both save
/// and restore; the core orchestrator guarantees this. A failed restore may
/// leave the system partially overwritten — callers discard the instance on
/// error.
impl Checkpointable for MemorySystem {
    fn segment_name(&self) -> &'static str {
        "mem"
    }

    fn save(&self, out: &mut Enc) {
        out.u32(self.line_size);
        out.u32(self.num_tiles);
        for tile in &self.tiles {
            let tm = tile.lock();
            for cache in [&tm.l1i, &tm.l1d, &tm.l2] {
                match cache {
                    Some(c) => {
                        out.u8(1);
                        c.save(out);
                    }
                    None => out.u8(0),
                }
            }
        }
        // The directory serializes as ONE globally line-sorted stream so the
        // bytes are independent of the configured shard count (and of the
        // shard hash): a checkpoint taken with 256 shards restores into a
        // system configured with 16, and identical states always serialize
        // to identical bytes regardless of HashMap iteration order.
        let guards: Vec<_> = self.shards.iter().map(|s| s.map.lock()).collect();
        let mut lines: Vec<(u64, &DirEntry)> =
            guards.iter().flat_map(|g| g.iter().map(|(&l, e)| (l, &**e))).collect();
        lines.sort_unstable_by_key(|(l, _)| *l);
        out.u32(lines.len() as u32);
        for (line, e) in lines {
            out.u64(line);
            match e.state {
                DirState::Uncached => out.u8(0),
                DirState::Shared => out.u8(1),
                DirState::Owned(t) => {
                    out.u8(2);
                    out.u32(t.0);
                }
            }
            out.u32(e.sharers.count());
            for s in e.sharers.iter() {
                out.u32(s.0);
            }
            out.bytes(&e.data);
        }
        drop(guards);
        out.u32(self.dram.len() as u32);
        for c in &self.dram {
            for w in c.export_state() {
                out.u64(w);
            }
        }
        self.classifier.save(out);
    }

    fn restore(&self, dec: &mut Dec<'_>) -> Result<(), SimError> {
        let bad = || corrupted("mem");
        if dec.u32()? != self.line_size || dec.u32()? != self.num_tiles {
            return Err(bad());
        }
        for tile in &self.tiles {
            let mut tm = tile.lock();
            let tm = &mut *tm;
            for cache in [&mut tm.l1i, &mut tm.l1d, &mut tm.l2] {
                let present = dec.u8()? != 0;
                match (present, cache.as_mut()) {
                    (true, Some(c)) => c.restore(dec)?,
                    (false, None) => {}
                    _ => return Err(bad()),
                }
            }
        }
        // The directory stream is shard-count-independent (see `save`): one
        // strictly line-ordered sequence, redistributed across however many
        // shards this instance is configured with. The system is quiescent,
        // so dropping the old boxed entries here is safe (no probe can hold
        // a stale pointer into them).
        let n = dec.u32()?;
        for shard in &self.shards {
            shard.map.lock().clear();
        }
        let mut prev: Option<u64> = None;
        for _ in 0..n {
            let line = dec.u64()?;
            if prev.is_some_and(|p| p >= line) {
                return Err(bad()); // not strictly increasing
            }
            prev = Some(line);
            let state = match dec.u8()? {
                0 => DirState::Uncached,
                1 => DirState::Shared,
                2 => {
                    let t = dec.u32()?;
                    if t >= self.num_tiles {
                        return Err(bad());
                    }
                    DirState::Owned(TileId(t))
                }
                _ => return Err(bad()),
            };
            let mut sharers = SharerSet::new(self.num_tiles);
            let ns = dec.u32()?;
            for _ in 0..ns {
                let t = dec.u32()?;
                if t >= self.num_tiles || !sharers.insert(TileId(t)) {
                    return Err(bad());
                }
            }
            let data = dec.bytes()?;
            if data.len() != self.line_size as usize {
                return Err(bad());
            }
            let entry = DirEntry { state, sharers, data: data.into() };
            if !entry.invariants_hold() {
                return Err(bad());
            }
            self.shard_of(line).map.lock().insert(line, Box::new(entry));
        }
        if dec.u32()? as usize != self.dram.len() {
            return Err(bad());
        }
        for c in &self.dram {
            c.import_state([dec.u64()?, dec.u64()?, dec.u64()?]);
        }
        self.classifier.restore(dec)?;
        // Caches and directory were restored independently; check they agree
        // before letting the protocol run against them.
        self.verify_coherence_invariants().map_err(|_| bad())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphite_base::GlobalProgress;
    use graphite_config::presets;

    fn system(tiles: u32) -> MemorySystem {
        let cfg = presets::paper_default(tiles);
        let net = Arc::new(Network::new(&cfg, Arc::new(GlobalProgress::new(tiles as usize))));
        MemorySystem::new(&cfg, net, false)
    }

    fn system_with(cfg: &SimConfig, classify: bool) -> MemorySystem {
        let net = Arc::new(Network::new(
            cfg,
            Arc::new(GlobalProgress::new(cfg.target.num_tiles as usize)),
        ));
        MemorySystem::new(cfg, net, classify)
    }

    #[test]
    #[ignore = "host-perf breakdown, run by hand with --release --nocapture"]
    fn profile_miss_path_breakdown() {
        use std::time::Instant;
        let mut cfg = presets::paper_default(1);
        if let Some(l2) = cfg.target.l2.as_mut() {
            l2.size_bytes = 256 * 1024;
            l2.associativity = 16;
        }
        let m = system_with(&cfg, false);
        const N: u64 = 200_000;
        let ns = |t0: Instant| t0.elapsed().as_nanos() as f64 / N as f64;

        let t0 = Instant::now();
        for i in 0..N {
            drop(m.mshr.try_acquire_or_wait(i % 6144, TileId(0)).unwrap());
        }
        println!("mshr acquire+release: {:.0} ns", ns(t0));

        let t0 = Instant::now();
        for i in 0..N {
            drop(m.mshr.acquire_service(i % 6144));
        }
        println!("mshr service pair:    {:.0} ns", ns(t0));

        let t0 = Instant::now();
        for i in 0..N {
            let _ = m.dir_entry_batched(i % 6144, 0);
        }
        println!("dir_entry_batched:    {:.0} ns", ns(t0));

        let t0 = Instant::now();
        for _ in 0..N {
            let _ = m.network.progress().estimate();
        }
        println!("progress estimate:    {:.0} ns", ns(t0));

        let t0 = Instant::now();
        for i in 0..N {
            let _ = m.route(TileId(0), TileId(0), CTRL_MSG_BYTES, Cycles(i));
        }
        println!("route:                {:.0} ns", ns(t0));

        let t0 = Instant::now();
        for i in 0..N {
            let _ = m.controller_of(TileId(0)).access(Cycles(i), 64);
        }
        println!("dram access:          {:.0} ns", ns(t0));

        let mut buf = [0u8; 8];
        let mut now = Cycles::ZERO;
        let t0 = Instant::now();
        for i in 0..N {
            now += m.read(TileId(0), now, Addr((i % 6144) * 64), &mut buf);
        }
        println!("full miss access:     {:.0} ns", ns(t0));

        // 16-tile flavor: remote homes, longer XY routes, link counters.
        let mut cfg16 = presets::paper_default(16);
        if let Some(l2) = cfg16.target.l2.as_mut() {
            l2.size_bytes = 256 * 1024;
            l2.associativity = 16;
        }
        let m = system_with(&cfg16, false);
        let t0 = Instant::now();
        for i in 0..N {
            let _ = m.route(TileId(0), TileId((i % 16) as u32), CTRL_MSG_BYTES, Cycles(i));
        }
        println!("route 16t remote:     {:.0} ns", ns(t0));

        let t0 = Instant::now();
        for i in 0..N {
            now += m.read(TileId(0), now, Addr((i % 6144) * 64), &mut buf);
        }
        println!("full miss 16t:        {:.0} ns", ns(t0));
    }

    /// Two host threads of the *same tile* racing on the same line: the MSHR
    /// coalesces the secondary miss, so however the race lands, each line
    /// costs exactly one directory transaction — `mem.misses` and the
    /// classified-miss counters must never double-count.
    #[test]
    fn coalesced_secondary_misses_count_once() {
        use std::sync::Barrier;
        let cfg = presets::paper_default(4);
        let m = Arc::new(system_with(&cfg, true));
        const LINES: u64 = 300;
        let barrier = Arc::new(Barrier::new(2));
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let (m, barrier) = (Arc::clone(&m), Arc::clone(&barrier));
                std::thread::spawn(move || {
                    let mut buf = [0u8; 8];
                    let mut now = Cycles::ZERO;
                    for l in 0..LINES {
                        // Both threads release together, maximizing the
                        // window where the second miss finds the first in
                        // flight and coalesces.
                        barrier.wait();
                        now += m.read(TileId(1), now, Addr(l * 64), &mut buf);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = m.stats();
        assert_eq!(s.misses.get(), LINES, "secondary misses must coalesce, not re-run");
        let classified = s.miss_cold.get()
            + s.miss_capacity.get()
            + s.miss_true_sharing.get()
            + s.miss_false_sharing.get();
        assert_eq!(classified, s.misses.get(), "each fill classified exactly once");
        // Same-tile waiters are coalesced secondaries, never cross-tile
        // conflicts.
        assert_eq!(s.mshr_conflict_waits.get(), 0);
        m.verify_coherence_invariants().unwrap();
    }

    /// Two *different* tiles racing on one line: each needs its own copy, so
    /// per line there are exactly two misses — the MSHR serializes the
    /// transactions but must not lose or duplicate either.
    #[test]
    fn cross_tile_races_keep_exact_miss_counts() {
        use std::sync::Barrier;
        let cfg = presets::paper_default(4);
        let m = Arc::new(system_with(&cfg, true));
        const LINES: u64 = 300;
        let barrier = Arc::new(Barrier::new(2));
        let threads: Vec<_> = (0..2u32)
            .map(|t| {
                let (m, barrier) = (Arc::clone(&m), Arc::clone(&barrier));
                std::thread::spawn(move || {
                    let mut buf = [0u8; 8];
                    let mut now = Cycles::ZERO;
                    for l in 0..LINES {
                        barrier.wait();
                        now += m.read(TileId(t), now, Addr(l * 64), &mut buf);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = m.stats();
        assert_eq!(s.misses.get(), 2 * LINES, "each tile fills its own copy exactly once");
        let classified = s.miss_cold.get()
            + s.miss_capacity.get()
            + s.miss_true_sharing.get()
            + s.miss_false_sharing.get();
        assert_eq!(classified, s.misses.get());
        m.verify_coherence_invariants().unwrap();
    }

    #[test]
    fn write_then_read_same_tile() {
        let m = system(4);
        let lat_w = m.write(TileId(0), Cycles(0), Addr(0x100), &7u64.to_le_bytes());
        assert!(lat_w > Cycles::ZERO);
        let mut buf = [0u8; 8];
        let lat_r = m.read(TileId(0), Cycles(lat_w.0), Addr(0x100), &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 7);
        // Second access is an L1 hit: 1 cycle.
        assert_eq!(lat_r, Cycles(1));
        m.verify_coherence_invariants().unwrap();
    }

    #[test]
    fn cross_tile_read_sees_write() {
        let m = system(4);
        m.write(TileId(0), Cycles(0), Addr(0x40), &0xDEADu64.to_le_bytes());
        let mut buf = [0u8; 8];
        m.read(TileId(3), Cycles(0), Addr(0x40), &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 0xDEAD);
        // Reader pulled the line out of the writer's cache.
        assert_eq!(m.stats().remote_fills.get(), 1);
        m.verify_coherence_invariants().unwrap();
    }

    #[test]
    fn write_invalidates_readers() {
        let m = system(4);
        let a = Addr(0x80);
        m.write(TileId(0), Cycles(0), a, &1u64.to_le_bytes());
        let mut buf = [0u8; 8];
        for t in 1..4 {
            m.read(TileId(t), Cycles(0), a, &mut buf);
        }
        // Now tile 1 writes: tiles 0, 2, 3 must be invalidated.
        let inv_before = m.stats().invalidations.get();
        m.write(TileId(1), Cycles(0), a, &2u64.to_le_bytes());
        assert_eq!(m.stats().invalidations.get() - inv_before, 3);
        m.read(TileId(2), Cycles(0), a, &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 2);
        m.verify_coherence_invariants().unwrap();
    }

    #[test]
    fn upgrade_from_shared_has_no_data_transfer() {
        let m = system(4);
        let a = Addr(0xC0);
        let mut buf = [0u8; 8];
        m.read(TileId(0), Cycles(0), a, &mut buf); // S in tile0
        let misses_before = m.stats().misses.get();
        m.write(TileId(0), Cycles(0), a, &5u64.to_le_bytes()); // upgrade
        assert_eq!(m.stats().upgrades.get(), 1);
        assert_eq!(m.stats().misses.get(), misses_before, "upgrade is not a miss");
        m.verify_coherence_invariants().unwrap();
    }

    #[test]
    fn eviction_writes_back_dirty_data() {
        // Tiny L2-only cache: 4 lines, direct-ish (assoc 2), to force
        // evictions quickly.
        let mut cfg = presets::paper_default(2);
        cfg.target.l1i = None;
        cfg.target.l1d = None;
        cfg.target.l2 = Some(graphite_config::CacheConfig {
            size_bytes: 256,
            associativity: 2,
            line_size: 64,
            access_latency: Cycles(2),
        });
        let m = system_with(&cfg, false);
        // Write 8 distinct lines mapping over 2 sets; victims must write back.
        for i in 0..8u64 {
            m.write(TileId(0), Cycles(0), Addr(i * 64), &i.to_le_bytes());
        }
        assert!(m.stats().writebacks.get() >= 4);
        // All values still readable (from DRAM after writeback).
        let mut buf = [0u8; 8];
        for i in 0..8u64 {
            m.read(TileId(0), Cycles(0), Addr(i * 64), &mut buf);
            assert_eq!(u64::from_le_bytes(buf), i, "line {i} lost after eviction");
        }
        m.verify_coherence_invariants().unwrap();
    }

    #[test]
    fn cross_line_access_is_split() {
        let m = system(2);
        // 16 bytes starting 8 before a line boundary.
        let addr = Addr(64 - 8);
        let data: Vec<u8> = (0..16).collect();
        m.write(TileId(0), Cycles(0), addr, &data);
        let mut buf = [0u8; 16];
        m.read(TileId(1), Cycles(0), addr, &mut buf);
        assert_eq!(&buf[..], &data[..]);
        // Two line segments => two stores recorded.
        assert_eq!(m.stats().stores.get(), 2);
    }

    #[test]
    fn peek_poke_bypass_timing_but_stay_coherent() {
        let m = system(4);
        // Poke untouched memory, then read through the cache path.
        m.poke_bytes(Addr(0x200), &9u64.to_le_bytes());
        let mut buf = [0u8; 8];
        let loads_before = m.stats().loads.get();
        m.peek_bytes(Addr(0x200), &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 9);
        assert_eq!(m.stats().loads.get(), loads_before, "peek is not a modeled access");
        m.read(TileId(0), Cycles(0), Addr(0x200), &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 9);
        // Now the line is Modified-in-cache after a write; poke must update
        // the cached copy, and peek must read it.
        m.write(TileId(0), Cycles(0), Addr(0x200), &10u64.to_le_bytes());
        m.poke_bytes(Addr(0x200), &11u64.to_le_bytes());
        m.peek_bytes(Addr(0x200), &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 11);
        m.read(TileId(0), Cycles(0), Addr(0x200), &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 11);
        // Shared case: another tile reads, then poke updates both copies.
        m.read(TileId(1), Cycles(0), Addr(0x200), &mut buf);
        m.poke_bytes(Addr(0x200), &12u64.to_le_bytes());
        m.read(TileId(1), Cycles(0), Addr(0x200), &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 12);
        m.verify_coherence_invariants().unwrap();
    }

    #[test]
    fn remote_miss_is_slower_than_local_hit() {
        let m = system(16);
        let a = Addr(0x1000);
        m.write(TileId(0), Cycles(0), a, &1u64.to_le_bytes());
        let mut buf = [0u8; 8];
        let remote = m.read(TileId(15), Cycles(0), a, &mut buf);
        let local = m.read(TileId(15), Cycles(0), a, &mut buf);
        assert!(remote.0 > local.0 * 5);
        assert!(remote.0 > 50, "remote fill should cost network + dir + dram: {remote}");
        assert_eq!(local, Cycles(1));
    }

    #[test]
    fn dirnb_forces_sharer_eviction() {
        let mut cfg = presets::paper_default(8);
        cfg.target.coherence = CoherenceScheme::DirNB { sharers: 2 };
        let m = system_with(&cfg, false);
        let a = Addr(0x40);
        let mut buf = [0u8; 8];
        for t in 0..4 {
            m.read(TileId(t), Cycles(0), a, &mut buf);
        }
        // Sharers capped at 2: reads 3 and 4 each forced an eviction.
        assert_eq!(m.stats().forced_evictions.get(), 2);
        m.verify_coherence_invariants().unwrap();
    }

    #[test]
    fn full_map_never_forces_evictions() {
        let m = system(32);
        let a = Addr(0x40);
        let mut buf = [0u8; 8];
        for t in 0..32 {
            m.read(TileId(t), Cycles(0), a, &mut buf);
        }
        assert_eq!(m.stats().forced_evictions.get(), 0);
        m.verify_coherence_invariants().unwrap();
    }

    #[test]
    fn limitless_traps_beyond_hw_pointers() {
        let mut cfg = presets::paper_default(8);
        cfg.target.coherence = CoherenceScheme::Limitless { sharers: 2, trap_cycles: 100 };
        let m = system_with(&cfg, false);
        let a = Addr(0x40);
        let mut buf = [0u8; 8];
        let mut lat_under = Cycles::ZERO;
        let mut lat_over = Cycles::ZERO;
        for t in 0..6 {
            let l = m.read(TileId(t), Cycles(0), a, &mut buf);
            if t < 2 {
                lat_under = l;
            } else {
                lat_over = l;
            }
        }
        assert_eq!(m.stats().limitless_traps.get(), 4, "reads 3..6 overflow 2 pointers");
        assert!(lat_over > lat_under, "trap adds latency");
        assert_eq!(m.stats().forced_evictions.get(), 0, "LimitLESS keeps all sharers");
        m.verify_coherence_invariants().unwrap();
    }

    #[test]
    fn miss_classification_end_to_end() {
        let cfg = presets::fig8_miss_characterization(2, 64);
        let m = system_with(&cfg, true);
        let a = Addr(0x40);
        let mut buf = [0u8; 8];
        m.read(TileId(0), Cycles(0), a, &mut buf); // cold
        m.write(TileId(1), Cycles(0), a, &1u64.to_le_bytes()); // cold (t1) + invalidate t0
        m.read(TileId(0), Cycles(0), a, &mut buf); // true sharing: word 0 written
        m.write(TileId(1), Cycles(0), Addr(0x40 + 32), &2u64.to_le_bytes()); // upgrade? no: t1 lost it.. it was invalidated? no: t1 had M, t0's read downgraded to S; so this is an upgrade writing word 8
        m.read(TileId(0), Cycles(0), a, &mut buf); // invalidated again; accessed word 0, written word 8 -> false sharing
        assert_eq!(m.stats().miss_cold.get(), 2);
        assert_eq!(m.stats().miss_true_sharing.get(), 1);
        assert_eq!(m.stats().miss_false_sharing.get(), 1);
    }

    #[test]
    fn ifetch_hits_after_first_access() {
        let m = system(2);
        let a = Addr(0x4000);
        let miss = m.ifetch(TileId(0), Cycles(0), a);
        let hit = m.ifetch(TileId(0), Cycles(0), a);
        assert!(miss > hit);
        assert_eq!(m.stats().ifetches.get(), 2);
        assert_eq!(m.stats().ifetch_misses.get(), 1);
    }

    #[test]
    fn concurrent_hammering_stays_coherent() {
        let m = Arc::new(system(8));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    // All tiles fight over 32 lines.
                    m.random_access_storm(TileId(t), t as u64 + 1, 32 * 64, 2_000);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        m.verify_coherence_invariants().unwrap();
        assert_eq!(m.stats().accesses(), 8 * 2_000);
    }

    #[test]
    fn sequential_consistency_single_location() {
        // Two tiles increment a shared counter with a crude retry loop; the
        // final value must reflect all increments when accesses are serial.
        let m = system(2);
        let a = Addr(0x800);
        let mut buf = [0u8; 8];
        for i in 0..100u64 {
            let t = TileId((i % 2) as u32);
            m.read(t, Cycles(0), a, &mut buf);
            let v = u64::from_le_bytes(buf) + 1;
            m.write(t, Cycles(0), a, &v.to_le_bytes());
        }
        m.read(TileId(0), Cycles(0), a, &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 100);
    }

    #[test]
    fn l2_only_hierarchy_works() {
        let cfg = presets::fig8_miss_characterization(4, 64);
        let m = system_with(&cfg, false);
        m.write(TileId(0), Cycles(0), Addr(0), &3u64.to_le_bytes());
        let mut buf = [0u8; 8];
        m.read(TileId(3), Cycles(0), Addr(0), &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 3);
        assert_eq!(m.stats().l1d_hits.get(), 0, "no L1 exists");
        m.verify_coherence_invariants().unwrap();
    }

    #[test]
    fn fetch_update_is_atomic_across_tiles() {
        let m = Arc::new(system(4));
        let a = Addr(0x400);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        m.fetch_update_u32(TileId(t), Cycles(0), a, |v| v + 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut buf = [0u8; 4];
        m.peek_bytes(a, &mut buf);
        assert_eq!(u32::from_le_bytes(buf), 4_000, "increments must not be lost");
        m.verify_coherence_invariants().unwrap();
    }

    #[test]
    fn fetch_update_returns_old_value_and_latency() {
        let m = system(2);
        let a = Addr(0x80);
        m.write(TileId(0), Cycles(0), a, &7u32.to_le_bytes());
        let (old, lat) = m.fetch_update_u32(TileId(0), Cycles(0), a, |v| v * 2);
        assert_eq!(old, 7);
        assert_eq!(lat, Cycles(1), "local Modified hit");
        let mut buf = [0u8; 4];
        m.peek_bytes(a, &mut buf);
        assert_eq!(u32::from_le_bytes(buf), 14);
    }

    #[test]
    #[should_panic(expected = "cross a line boundary")]
    fn fetch_update_rejects_straddling_access() {
        let m = system(2);
        m.fetch_update_u32(TileId(0), Cycles(0), Addr(62), |v| v);
    }

    #[test]
    fn per_tile_counters_track_requesters() {
        let m = system(4);
        let mut buf = [0u8; 8];
        // Tile 1 makes two accesses; one is a miss (directory transaction).
        m.read(TileId(1), Cycles(0), Addr(0x40), &mut buf);
        m.read(TileId(1), Cycles(0), Addr(0x40), &mut buf);
        let pt = &m.per_tile_counters()[1];
        assert_eq!(pt.accesses.get(), 2);
        assert_eq!(pt.transactions.get(), 1);
        assert_eq!(m.per_tile_counters()[0].accesses.get(), 0);
    }

    #[test]
    fn mesi_grants_exclusive_and_upgrades_silently() {
        let mut cfg = presets::paper_default(4);
        cfg.target.protocol = CacheProtocol::Mesi;
        let m = system_with(&cfg, false);
        let a = Addr(0x40);
        let mut buf = [0u8; 8];
        // Sole reader takes the line Exclusive...
        m.read(TileId(0), Cycles(0), a, &mut buf);
        assert_eq!(m.stats().exclusive_grants.get(), 1);
        // ...and writes it without any directory transaction.
        let miss_before = m.stats().misses.get();
        let upgr_before = m.stats().upgrades.get();
        m.write(TileId(0), Cycles(0), a, &1u64.to_le_bytes());
        assert_eq!(m.stats().misses.get(), miss_before);
        assert_eq!(m.stats().upgrades.get(), upgr_before, "no upgrade transaction");
        assert_eq!(m.stats().silent_upgrades.get(), 1);
        m.verify_coherence_invariants().unwrap();
    }

    #[test]
    fn mesi_second_reader_downgrades_exclusive() {
        let mut cfg = presets::paper_default(4);
        cfg.target.protocol = CacheProtocol::Mesi;
        let m = system_with(&cfg, false);
        let a = Addr(0x40);
        let mut buf = [0u8; 8];
        m.read(TileId(0), Cycles(0), a, &mut buf); // E at tile0
        m.read(TileId(1), Cycles(0), a, &mut buf); // downgrade both to S
        m.verify_coherence_invariants().unwrap();
        // A write by tile0 is now an upgrade transaction, not silent.
        m.write(TileId(0), Cycles(0), a, &2u64.to_le_bytes());
        assert_eq!(m.stats().upgrades.get(), 1);
        assert_eq!(m.stats().silent_upgrades.get(), 0);
        m.read(TileId(1), Cycles(0), a, &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 2);
    }

    #[test]
    fn mesi_clean_exclusive_eviction_needs_no_writeback() {
        let mut cfg = presets::paper_default(2);
        cfg.target.protocol = CacheProtocol::Mesi;
        cfg.target.l1i = None;
        cfg.target.l1d = None;
        cfg.target.l2 = Some(graphite_config::CacheConfig {
            size_bytes: 256,
            associativity: 2,
            line_size: 64,
            access_latency: Cycles(2),
        });
        let m = system_with(&cfg, false);
        let mut buf = [0u8; 8];
        // Read 8 distinct lines (clean, Exclusive): evictions must not
        // count as writebacks.
        for i in 0..8u64 {
            m.read(TileId(0), Cycles(0), Addr(i * 64), &mut buf);
        }
        assert_eq!(m.stats().writebacks.get(), 0, "clean E evictions are silent");
        m.verify_coherence_invariants().unwrap();
    }

    #[test]
    fn mesi_concurrent_storm_stays_coherent() {
        let mut cfg = presets::paper_default(4);
        cfg.target.protocol = CacheProtocol::Mesi;
        let m = Arc::new(system_with(&cfg, false));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    m.random_access_storm(TileId(t), t as u64 + 3, 32 * 64, 2_000);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        m.verify_coherence_invariants().unwrap();
    }

    #[test]
    fn msi_never_grants_exclusive() {
        let m = system(4);
        let mut buf = [0u8; 8];
        m.read(TileId(0), Cycles(0), Addr(0x40), &mut buf);
        assert_eq!(m.stats().exclusive_grants.get(), 0);
        m.write(TileId(0), Cycles(0), Addr(0x40), &1u64.to_le_bytes());
        assert_eq!(m.stats().silent_upgrades.get(), 0);
        assert_eq!(m.stats().upgrades.get(), 1, "MSI pays the upgrade");
    }

    #[test]
    fn checkpoint_roundtrip_is_byte_identical() {
        let m = system(4);
        // Deterministic single-threaded storm touching all protocol states.
        for t in 0..4 {
            m.random_access_storm(TileId(t), t as u64 + 1, 32 * 64, 500);
        }
        let mut enc = Enc::new();
        m.save(&mut enc);
        let buf = enc.finish();

        let fresh = system(4);
        fresh.restore(&mut Dec::new(&buf)).unwrap();
        fresh.verify_coherence_invariants().unwrap();
        // Functional contents identical.
        for line in 0..32u64 {
            let (mut b1, mut b2) = ([0u8; 64], [0u8; 64]);
            m.peek_bytes(Addr(line * 64), &mut b1);
            fresh.peek_bytes(Addr(line * 64), &mut b2);
            assert_eq!(b1, b2, "line {line} differs after restore");
        }
        // Re-saving the restored system reproduces the checkpoint exactly:
        // cache tags, LRU stamps, directory entries and DRAM queue clocks
        // all survived the round trip.
        let mut enc2 = Enc::new();
        fresh.save(&mut enc2);
        assert_eq!(buf, enc2.finish(), "re-saved checkpoint differs");
    }

    #[test]
    fn checkpoint_roundtrip_carries_classifier_history() {
        let cfg = presets::fig8_miss_characterization(2, 64);
        let m = system_with(&cfg, true);
        let a = Addr(0x40);
        let mut buf8 = [0u8; 8];
        m.read(TileId(0), Cycles(0), a, &mut buf8);
        m.write(TileId(1), Cycles(0), a, &1u64.to_le_bytes());
        let mut enc = Enc::new();
        m.save(&mut enc);
        let bytes = enc.finish();

        let fresh = system_with(&cfg, true);
        fresh.restore(&mut Dec::new(&bytes)).unwrap();
        // Tile 0 was invalidated by tile 1's write of word 0; its re-read of
        // word 0 must classify as true sharing in BOTH systems.
        m.read(TileId(0), Cycles(0), a, &mut buf8);
        fresh.read(TileId(0), Cycles(0), a, &mut buf8);
        assert_eq!(m.stats().miss_true_sharing.get(), 1);
        assert_eq!(fresh.stats().miss_true_sharing.get(), 1);
    }

    #[test]
    fn restore_rejects_mismatch_and_truncation() {
        let m = system(4);
        m.random_access_storm(TileId(0), 7, 16 * 64, 100);
        let mut enc = Enc::new();
        m.save(&mut enc);
        let buf = enc.finish();
        // Wrong tile count is a typed corruption, not a panic.
        let other = system(8);
        assert!(matches!(other.restore(&mut Dec::new(&buf)), Err(SimError::CkptCorrupted { .. })));
        // Truncation anywhere is a typed error.
        let fresh = system(4);
        assert!(fresh.restore(&mut Dec::new(&buf[..buf.len() / 2])).is_err());
        // The full payload still restores into another fresh instance.
        let fresh2 = system(4);
        fresh2.restore(&mut Dec::new(&buf)).unwrap();
    }

    #[test]
    fn stats_mean_latency_and_miss_rate() {
        let m = system(4);
        let mut buf = [0u8; 8];
        m.read(TileId(0), Cycles(0), Addr(0), &mut buf); // miss
        m.read(TileId(0), Cycles(0), Addr(0), &mut buf); // hit
        assert_eq!(m.stats().miss_rate(), 0.5);
        assert!(m.stats().mean_latency() > 1.0);
    }
}
