//! Miss-status holding registers: per-line exclusivity for in-flight misses.
//!
//! An [`MshrTable`] pins each cache-line index to at most one in-flight
//! directory transaction at a time. The winner inserts an entry and runs the
//! transaction; every other thread that misses on the same line *waits
//! without inserting* and then retries from its own cache — by the time the
//! waiter wakes, the winner's fill has usually landed, so the retry resolves
//! as a local hit instead of a second directory transaction. That is the
//! coalescing a hardware MSHR performs for secondary misses, expressed as a
//! release-and-retry protocol so simulated timing is identical whether a
//! thread won the race or drafted behind the winner.
//!
//! Lock ordering: an MSHR entry is the *top-level* per-line resource. A
//! thread holds at most one entry at a time (evictions complete before the
//! fill's entry is acquired), waiters sleep holding no locks, and the shard
//! maps inside the table are leaf locks held only for map mutation — so the
//! table can never participate in a deadlock cycle.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use graphite_base::{FxBuildHasher, TileId};

/// Sentinel requester for service-side acquisitions ([`MshrTable::acquire_service`]):
/// checkpoint peeks/pokes that need per-line exclusivity but belong to no tile.
const SERVICE_TILE: TileId = TileId(u32::MAX);

const SHARD_BITS: u32 = 6;
const NUM_SHARDS: usize = 1 << SHARD_BITS;

/// Why an acquisition attempt waited instead of inserting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrWait {
    /// Another thread of the *same* tile already has the line in flight —
    /// this is a coalesced secondary miss; the retry will hit locally.
    SameTile,
    /// A different tile's miss is in flight; the wait avoided two racing
    /// directory transactions on one line.
    CrossTile,
}

#[derive(Default)]
struct WaitEvent {
    done: Mutex<bool>,
    cv: Condvar,
}

struct InFlight {
    tile: TileId,
    /// Allocated lazily by the first waiter; `None` when nobody is waiting.
    event: Option<Arc<WaitEvent>>,
}

#[repr(align(64))]
#[derive(Default)]
struct PaddedU32(AtomicU32);

/// The table of in-flight misses, sharded to keep map locks uncontended.
pub struct MshrTable {
    shards: Box<[Mutex<HashMap<u64, InFlight, FxBuildHasher>>]>,
    /// Outstanding entries per tile, for the `mshr_entries` cap.
    per_tile: Box<[PaddedU32]>,
    /// `mshr_entries`; 0 means uncapped.
    cap: u32,
    stalls: AtomicU64,
}

impl std::fmt::Debug for MshrTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MshrTable")
            .field("cap", &self.cap)
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

impl MshrTable {
    /// Builds a table for `num_tiles` tiles with an outstanding-miss cap of
    /// `cap` per tile (0 = uncapped).
    pub fn new(num_tiles: usize, cap: u32) -> Self {
        MshrTable {
            shards: (0..NUM_SHARDS).map(|_| Mutex::new(HashMap::default())).collect(),
            per_tile: (0..num_tiles).map(|_| PaddedU32::default()).collect(),
            cap,
            stalls: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard_of(&self, line: u64) -> &Mutex<HashMap<u64, InFlight, FxBuildHasher>> {
        // Golden-ratio multiply decorrelates the aligned, sequential line
        // indices workloads produce; the top bits pick the shard.
        let idx = (line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - SHARD_BITS)) as usize;
        &self.shards[idx]
    }

    /// Reserves one of this tile's `cap` outstanding slots, spinning (with
    /// yields) while the tile is at its cap. Returns whether it had to stall.
    fn reserve_slot(&self, tile_idx: usize) -> bool {
        let ctr = &self.per_tile[tile_idx].0;
        if self.cap == 0 {
            ctr.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let mut stalled = false;
        loop {
            let cur = ctr.load(Ordering::Relaxed);
            if cur < self.cap {
                if ctr
                    .compare_exchange_weak(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    return stalled;
                }
            } else {
                if !stalled {
                    stalled = true;
                    self.stalls.fetch_add(1, Ordering::Relaxed);
                }
                std::thread::yield_now();
            }
        }
    }

    /// Tries to register a miss on `line` for `tile`.
    ///
    /// * `Ok(guard)` — this thread now owns the line's in-flight slot and
    ///   must run the directory transaction; dropping the guard releases the
    ///   slot and wakes every waiter.
    /// * `Err(kind)` — another miss on the line was already in flight. The
    ///   call **blocked until that miss completed** and registered nothing;
    ///   the caller must re-probe its own cache and, on a miss, retry the
    ///   whole sequence.
    pub fn try_acquire_or_wait(&self, line: u64, tile: TileId) -> Result<MshrGuard<'_>, MshrWait> {
        let tile_idx = tile.0 as usize;
        let stalled = self.reserve_slot(tile_idx);
        let event = {
            let mut map = self.shard_of(line).lock();
            match map.entry(line) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(InFlight { tile, event: None });
                    return Ok(MshrGuard { table: self, line, tile_idx: Some(tile_idx), stalled });
                }
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    let holder = o.get().tile;
                    let ev = Arc::clone(
                        o.get_mut().event.get_or_insert_with(|| Arc::new(WaitEvent::default())),
                    );
                    (if holder == tile { MshrWait::SameTile } else { MshrWait::CrossTile }, ev)
                }
            }
        };
        // We did not insert: give the reserved slot back before sleeping.
        self.per_tile[tile_idx].0.fetch_sub(1, Ordering::Relaxed);
        let (kind, ev) = event;
        let mut done = ev.done.lock();
        while !*done {
            ev.cv.wait(&mut done);
        }
        Err(kind)
    }

    /// Acquires per-line exclusivity for a service-side operation (checkpoint
    /// peek/poke), waiting out any in-flight miss. Unlike
    /// [`MshrTable::try_acquire_or_wait`] this never returns until it owns
    /// the slot, and it bypasses the per-tile cap.
    pub fn acquire_service(&self, line: u64) -> MshrGuard<'_> {
        loop {
            let event = {
                let mut map = self.shard_of(line).lock();
                match map.entry(line) {
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(InFlight { tile: SERVICE_TILE, event: None });
                        return MshrGuard { table: self, line, tile_idx: None, stalled: false };
                    }
                    std::collections::hash_map::Entry::Occupied(mut o) => Arc::clone(
                        o.get_mut().event.get_or_insert_with(|| Arc::new(WaitEvent::default())),
                    ),
                }
            };
            let mut done = event.done.lock();
            while !*done {
                event.cv.wait(&mut done);
            }
        }
    }

    fn release(&self, line: u64, tile_idx: Option<usize>) {
        let event = {
            let mut map = self.shard_of(line).lock();
            map.remove(&line).expect("MSHR release of absent line").event
        };
        if let Some(i) = tile_idx {
            self.per_tile[i].0.fetch_sub(1, Ordering::Relaxed);
        }
        if let Some(ev) = event {
            // Set the flag under the event mutex so a waiter between its
            // `done` check and `cv.wait` cannot miss the wakeup.
            let mut done = ev.done.lock();
            *done = true;
            ev.cv.notify_all();
        }
    }

    /// Total entries currently in flight (quiescence checks and tests).
    pub fn in_flight(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Cumulative count of acquisitions that stalled on the per-tile cap.
    pub fn stall_events(&self) -> u64 {
        self.stalls.load(Ordering::Relaxed)
    }
}

/// Ownership of one line's in-flight slot; dropping releases it and wakes
/// all waiters.
#[must_use = "dropping the guard releases the MSHR entry"]
pub struct MshrGuard<'a> {
    table: &'a MshrTable,
    line: u64,
    /// `None` for service acquisitions (exempt from the per-tile cap).
    tile_idx: Option<usize>,
    stalled: bool,
}

impl MshrGuard<'_> {
    /// Whether acquiring this entry stalled on the tile's outstanding cap.
    pub fn stalled(&self) -> bool {
        self.stalled
    }
}

impl Drop for MshrGuard<'_> {
    fn drop(&mut self) {
        self.table.release(self.line, self.tile_idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    #[test]
    fn acquire_release_reacquire() {
        let t = MshrTable::new(4, 8);
        let g = t.try_acquire_or_wait(42, TileId(0)).unwrap();
        assert_eq!(t.in_flight(), 1);
        drop(g);
        assert_eq!(t.in_flight(), 0);
        let g2 = t.try_acquire_or_wait(42, TileId(1)).unwrap();
        assert!(!g2.stalled());
    }

    #[test]
    fn different_lines_do_not_conflict() {
        let t = MshrTable::new(4, 8);
        let _a = t.try_acquire_or_wait(1, TileId(0)).unwrap();
        let _b = t.try_acquire_or_wait(2, TileId(0)).unwrap();
        assert_eq!(t.in_flight(), 2);
    }

    #[test]
    fn waiter_blocks_until_release_and_sees_kind() {
        let t = Arc::new(MshrTable::new(4, 8));
        let released = Arc::new(AtomicBool::new(false));
        let g = t.try_acquire_or_wait(7, TileId(2)).unwrap();
        let same = {
            let (t, released) = (Arc::clone(&t), Arc::clone(&released));
            std::thread::spawn(move || {
                let r = t.try_acquire_or_wait(7, TileId(2));
                assert!(released.load(Ordering::SeqCst), "waiter returned before release");
                assert_eq!(r.err(), Some(MshrWait::SameTile));
            })
        };
        let cross = {
            let (t, released) = (Arc::clone(&t), Arc::clone(&released));
            std::thread::spawn(move || {
                let r = t.try_acquire_or_wait(7, TileId(3));
                assert!(released.load(Ordering::SeqCst), "waiter returned before release");
                assert_eq!(r.err(), Some(MshrWait::CrossTile));
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        released.store(true, Ordering::SeqCst);
        drop(g);
        same.join().unwrap();
        cross.join().unwrap();
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn per_tile_cap_stalls_extra_misses() {
        let t = Arc::new(MshrTable::new(2, 1));
        let g = t.try_acquire_or_wait(10, TileId(0)).unwrap();
        let released = Arc::new(AtomicBool::new(false));
        let h = {
            let (t, released) = (Arc::clone(&t), Arc::clone(&released));
            std::thread::spawn(move || {
                // Different line, same tile: blocked by the cap, not the line.
                let g2 = t.try_acquire_or_wait(11, TileId(0)).unwrap();
                assert!(released.load(Ordering::SeqCst), "cap did not stall");
                assert!(g2.stalled());
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        // Another tile is unaffected by tile 0's cap.
        let other = t.try_acquire_or_wait(12, TileId(1)).unwrap();
        assert!(!other.stalled());
        released.store(true, Ordering::SeqCst);
        drop(g);
        h.join().unwrap();
        assert!(t.stall_events() >= 1);
    }

    #[test]
    fn service_acquire_waits_out_misses() {
        let t = Arc::new(MshrTable::new(2, 0));
        let g = t.try_acquire_or_wait(5, TileId(0)).unwrap();
        let released = Arc::new(AtomicBool::new(false));
        let h = {
            let (t, released) = (Arc::clone(&t), Arc::clone(&released));
            std::thread::spawn(move || {
                let _svc = t.acquire_service(5);
                assert!(released.load(Ordering::SeqCst));
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        released.store(true, Ordering::SeqCst);
        drop(g);
        h.join().unwrap();
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn hammering_one_line_always_converges() {
        let t = Arc::new(MshrTable::new(8, 4));
        let mut handles = Vec::new();
        for tid in 0..8u32 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let mut wins = 0u32;
                for _ in 0..200 {
                    loop {
                        match t.try_acquire_or_wait(99, TileId(tid)) {
                            Ok(g) => {
                                wins += 1;
                                drop(g);
                                break;
                            }
                            Err(_) => continue, // re-probe-and-retry stand-in
                        }
                    }
                }
                wins
            }));
        }
        let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 8 * 200);
        assert_eq!(t.in_flight(), 0);
    }
}
