//! Set-associative cache model with LRU replacement and MSI line states.
//!
//! Caches in Graphite are *functional*: lines hold the application's real
//! bytes, so protocol correctness is a precondition of the simulation
//! completing (paper §3.2 — "this strategy automatically helps verify the
//! correctness of complex hierarchies and protocols").

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use graphite_base::{Cycles, SeqCount, SimError};
use graphite_ckpt::{corrupted, Dec, Enc};
use graphite_config::CacheConfig;

use crate::addr::Addr;

/// Coherence state of a cached line (MSI, plus Exclusive under MESI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Read-only copy; other caches may also hold it.
    Shared,
    /// Clean sole copy (MESI only): may be written without a directory
    /// transaction, silently becoming Modified.
    Exclusive,
    /// Exclusive dirty copy; no other cache holds the line.
    Modified,
}

impl LineState {
    /// True when a write may proceed without a directory transaction.
    pub fn writable(self) -> bool {
        matches!(self, LineState::Modified | LineState::Exclusive)
    }
}

/// A resident cache line.
#[derive(Debug)]
pub struct CacheLine {
    /// Line index (address / line size).
    pub line: u64,
    /// MSI state.
    pub state: LineState,
    /// The line's bytes; `None` for tag-only caches (L1I).
    pub data: Option<Box<[u8]>>,
    /// Mirror of `data`'s buffer address (null when `None`), readable
    /// atomically by the lock-free probe — `Option<Box<[u8]>>` is a fat
    /// pointer with unspecified layout and cannot be read racily.
    data_ptr: AtomicPtr<u8>,
    /// LRU stamp (monotone per cache); atomic so the lock-free read probe
    /// can refresh recency without the tile mutex.
    stamp: AtomicU64,
}

impl CacheLine {
    fn new(line: u64, state: LineState, data: Option<Box<[u8]>>, stamp: u64) -> Self {
        let ptr = data.as_ref().map_or(std::ptr::null_mut(), |d| d.as_ptr() as *mut u8);
        CacheLine { line, state, data, data_ptr: AtomicPtr::new(ptr), stamp: AtomicU64::new(stamp) }
    }

    /// Replaces the line's data buffer. Every reassignment of `data` must go
    /// through here so the probe's pointer mirror stays in sync; in-place
    /// writes to the existing buffer don't move it and need no update.
    pub fn set_data(&mut self, data: Option<Box<[u8]>>) {
        let ptr = data.as_ref().map_or(std::ptr::null_mut(), |d| d.as_ptr() as *mut u8);
        self.data = data;
        self.data_ptr.store(ptr, Ordering::Release);
    }
}

impl Clone for CacheLine {
    fn clone(&self) -> Self {
        CacheLine::new(self.line, self.state, self.data.clone(), self.stamp.load(Ordering::Relaxed))
    }
}

/// A line pushed out by [`Cache::insert`].
#[derive(Debug, Clone)]
pub struct Evicted {
    /// Line index of the victim.
    pub line: u64,
    /// State it was held in (Modified ⇒ needs writeback).
    pub state: LineState,
    /// Victim data for writeback, if the cache stores data.
    pub data: Option<Box<[u8]>>,
}

/// One set-associative, LRU, write-back cache level.
///
/// # Examples
///
/// ```
/// use graphite_base::Cycles;
/// use graphite_config::CacheConfig;
/// use graphite_memory::cache::{Cache, LineState};
///
/// let cfg = CacheConfig {
///     size_bytes: 1024,
///     associativity: 2,
///     line_size: 64,
///     access_latency: Cycles(1),
/// };
/// let mut c = Cache::new(&cfg, true);
/// assert!(c.lookup(3).is_none());
/// c.insert(3, LineState::Shared, Some(vec![0u8; 64].into()));
/// assert!(c.lookup(3).is_some());
/// ```
#[derive(Debug)]
pub struct Cache {
    sets: Vec<Vec<CacheLine>>,
    assoc: usize,
    line_size: u32,
    access_latency: Cycles,
    stores_data: bool,
    next_stamp: AtomicU64,
    /// `num_sets - 1` when the set count is a power of two (every realistic
    /// geometry), letting [`Cache::set_of`] mask instead of divide on the
    /// per-access hot path; `None` falls back to modulo.
    set_mask: Option<u64>,
}

impl Cache {
    /// Builds a cache from its configuration. `stores_data` selects between
    /// a functional cache (L1D/L2) and a tag-only timing cache (L1I).
    pub fn new(cfg: &CacheConfig, stores_data: bool) -> Self {
        let num_sets = cfg.num_sets() as usize;
        Cache {
            sets: (0..num_sets).map(|_| Vec::with_capacity(cfg.associativity as usize)).collect(),
            assoc: cfg.associativity as usize,
            line_size: cfg.line_size,
            access_latency: cfg.access_latency,
            stores_data,
            next_stamp: AtomicU64::new(0),
            set_mask: num_sets.is_power_of_two().then(|| num_sets as u64 - 1),
        }
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> u32 {
        self.line_size
    }

    /// Hit latency.
    pub fn access_latency(&self) -> Cycles {
        self.access_latency
    }

    /// Number of resident lines (for tests and capacity invariants).
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Maximum lines the cache can hold.
    pub fn capacity_lines(&self) -> usize {
        self.sets.len() * self.assoc
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        match self.set_mask {
            Some(mask) => (line & mask) as usize,
            None => (line % self.sets.len() as u64) as usize,
        }
    }

    /// Looks a line up, refreshing its LRU stamp on hit.
    pub fn lookup(&mut self, line: u64) -> Option<&mut CacheLine> {
        let stamp = self.next_stamp.fetch_add(1, Ordering::Relaxed) + 1;
        let set = self.set_of(line);
        let entry = self.sets[set].iter_mut().find(|l| l.line == line)?;
        entry.stamp.store(stamp, Ordering::Relaxed);
        Some(entry)
    }

    /// Looks a line up without touching LRU (for coherence probes by other
    /// tiles, which must not perturb the victim's replacement behaviour).
    pub fn peek(&self, line: u64) -> Option<&CacheLine> {
        let set = self.set_of(line);
        self.sets[set].iter().find(|l| l.line == line)
    }

    /// Mutable peek without LRU update.
    pub fn peek_mut(&mut self, line: u64) -> Option<&mut CacheLine> {
        let set = self.set_of(line);
        self.sets[set].iter_mut().find(|l| l.line == line)
    }

    /// Whether inserting `line` would evict a victim, and which one.
    /// Used for the two-phase fill: evictions run as their own directory
    /// transaction before the fill.
    pub fn pending_victim(&self, line: u64) -> Option<&CacheLine> {
        let set = self.set_of(line);
        if self.sets[set].iter().any(|l| l.line == line) {
            return None; // already resident, no eviction
        }
        if self.sets[set].len() < self.assoc {
            return None;
        }
        self.sets[set].iter().min_by_key(|l| l.stamp.load(Ordering::Relaxed))
    }

    /// Inserts a line, returning the LRU victim if the set was full.
    ///
    /// # Panics
    ///
    /// Panics if the line is already resident (callers must use
    /// [`Cache::lookup`]/[`Cache::peek_mut`] to update a resident line).
    pub fn insert(
        &mut self,
        line: u64,
        state: LineState,
        data: Option<Box<[u8]>>,
    ) -> Option<Evicted> {
        debug_assert!(data.is_some() == self.stores_data, "data presence must match cache kind");
        let stamp = self.next_stamp.fetch_add(1, Ordering::Relaxed) + 1;
        let set = self.set_of(line);
        assert!(
            !self.sets[set].iter().any(|l| l.line == line),
            "insert of already-resident line {line}"
        );
        let evicted = if self.sets[set].len() == self.assoc {
            let victim_idx = self.sets[set]
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.stamp.load(Ordering::Relaxed))
                .map(|(i, _)| i)
                .expect("full set has a victim");
            let v = self.sets[set].swap_remove(victim_idx);
            Some(Evicted { line: v.line, state: v.state, data: v.data })
        } else {
            None
        };
        self.sets[set].push(CacheLine::new(line, state, data, stamp));
        evicted
    }

    /// Removes a line (invalidation or inclusion enforcement), returning it.
    pub fn remove(&mut self, line: u64) -> Option<CacheLine> {
        let set = self.set_of(line);
        let idx = self.sets[set].iter().position(|l| l.line == line)?;
        Some(self.sets[set].swap_remove(idx))
    }

    /// Reads `buf.len()` bytes at `addr` from a resident line.
    ///
    /// # Panics
    ///
    /// Panics if the line is absent, the cache is tag-only, or the access
    /// crosses the line boundary.
    pub fn read_bytes(&mut self, addr: Addr, buf: &mut [u8]) {
        let ls = self.line_size;
        let line = addr.line(ls);
        let off = (addr.0 % ls as u64) as usize;
        assert!(off + buf.len() <= ls as usize, "access crosses line boundary");
        let entry = self.lookup(line).expect("read_bytes on absent line");
        let data = entry.data.as_ref().expect("read_bytes on tag-only cache");
        buf.copy_from_slice(&data[off..off + buf.len()]);
    }

    /// Seqlock-validated lock-free read: if `line` is resident, copies
    /// `buf.len()` bytes starting at byte `off` of the line into `buf` and
    /// refreshes the line's LRU stamp, all without taking the tile lock.
    /// Returns `false` on a miss, a tag-only line, or when a concurrent
    /// mutation raced the copy — callers fall back to the locked path, so a
    /// `false` is never wrong, only slow.
    ///
    /// # Safety
    ///
    /// `cache` must point to a live `Cache` whose owner upholds the seqlock
    /// protocol around `seq`: every mutation of this cache (insert, remove,
    /// restore, in-place data writes) happens inside a
    /// `begin_write`/`end_write` section of the same `SeqCount`. Line data
    /// boxes must never be deallocated while probes can run (the memory
    /// system recycles them through a free pool), so a stale `data_ptr` reads
    /// garbage-but-allocated bytes that validation then rejects. Set vectors
    /// are built `with_capacity(assoc)` and never grow past it, so their
    /// buffers never reallocate.
    pub unsafe fn probe_read(
        cache: *const Cache,
        seq: &SeqCount,
        line: u64,
        off: usize,
        buf: &mut [u8],
    ) -> bool {
        let Some(snap) = seq.read_begin() else { return false };
        let c = &*cache;
        if !c.stores_data {
            return false;
        }
        debug_assert!(off + buf.len() <= c.line_size as usize, "access crosses line boundary");
        let set_idx = match c.set_mask {
            Some(mask) => (line & mask) as usize,
            None => (line % c.sets.len() as u64) as usize,
        };
        let set = c.sets.get_unchecked(set_idx);
        // `len` may be momentarily stale against a racing insert/remove;
        // capping at `assoc` keeps the scan inside the (never-reallocated)
        // buffer and validation rejects anything torn.
        let n = set.len().min(c.assoc);
        let base = set.as_ptr();
        for i in 0..n {
            let cl = base.add(i);
            if std::ptr::read_volatile(std::ptr::addr_of!((*cl).line)) != line {
                continue;
            }
            let dp = (*cl).data_ptr.load(Ordering::Acquire);
            if dp.is_null() {
                return false;
            }
            std::ptr::copy_nonoverlapping(dp.add(off), buf.as_mut_ptr(), buf.len());
            if !seq.read_validate(snap) {
                return false;
            }
            // Validated hit: refresh recency exactly as the locked lookup
            // would have.
            let stamp = c.next_stamp.fetch_add(1, Ordering::Relaxed) + 1;
            (*cl).stamp.store(stamp, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Serializes the full cache contents — tags, states, LRU stamps, and
    /// (for functional caches) line data — into a checkpoint payload.
    pub fn save(&self, out: &mut Enc) {
        out.u64(self.next_stamp.load(Ordering::Relaxed));
        out.u32(self.sets.len() as u32);
        for set in &self.sets {
            out.u32(set.len() as u32);
            for l in set {
                out.u64(l.line);
                out.u8(match l.state {
                    LineState::Shared => 0,
                    LineState::Exclusive => 1,
                    LineState::Modified => 2,
                });
                out.u64(l.stamp.load(Ordering::Relaxed));
                match &l.data {
                    Some(d) => {
                        out.u8(1);
                        out.bytes(d);
                    }
                    None => out.u8(0),
                }
            }
        }
    }

    /// Restores contents saved by [`Cache::save`] into a cache built from
    /// the same configuration, replacing whatever is resident.
    ///
    /// # Errors
    ///
    /// Returns a typed checkpoint error when the payload's geometry (set
    /// count, associativity, data presence, line size) does not match.
    pub fn restore(&mut self, dec: &mut Dec<'_>) -> Result<(), SimError> {
        let next_stamp = dec.u64()?;
        if dec.u32()? as usize != self.sets.len() {
            return Err(corrupted("cache"));
        }
        let mut sets = Vec::with_capacity(self.sets.len());
        for _ in 0..self.sets.len() {
            let ways = dec.u32()? as usize;
            if ways > self.assoc {
                return Err(corrupted("cache"));
            }
            let mut set = Vec::with_capacity(self.assoc);
            for _ in 0..ways {
                let line = dec.u64()?;
                let state = match dec.u8()? {
                    0 => LineState::Shared,
                    1 => LineState::Exclusive,
                    2 => LineState::Modified,
                    _ => return Err(corrupted("cache")),
                };
                let stamp = dec.u64()?;
                let data = match dec.u8()? {
                    0 => None,
                    1 => {
                        let d = dec.bytes()?;
                        if d.len() != self.line_size as usize {
                            return Err(corrupted("cache"));
                        }
                        Some(d.to_vec().into_boxed_slice())
                    }
                    _ => return Err(corrupted("cache")),
                };
                if data.is_some() != self.stores_data {
                    return Err(corrupted("cache"));
                }
                set.push(CacheLine::new(line, state, data, stamp));
            }
            sets.push(set);
        }
        self.sets = sets;
        self.next_stamp.store(next_stamp, Ordering::Relaxed);
        Ok(())
    }

    /// Writes bytes at `addr` into a resident line and marks it Modified.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Cache::read_bytes`].
    pub fn write_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        let ls = self.line_size;
        let line = addr.line(ls);
        let off = (addr.0 % ls as u64) as usize;
        assert!(off + bytes.len() <= ls as usize, "access crosses line boundary");
        let entry = self.lookup(line).expect("write_bytes on absent line");
        entry.state = LineState::Modified;
        let data = entry.data.as_mut().expect("write_bytes on tag-only cache");
        data[off..off + bytes.len()].copy_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cache(size: u64, assoc: u32, line: u32) -> Cache {
        Cache::new(
            &CacheConfig {
                size_bytes: size,
                associativity: assoc,
                line_size: line,
                access_latency: Cycles(1),
            },
            true,
        )
    }

    #[test]
    fn miss_then_hit() {
        let mut c = cache(1024, 2, 64);
        assert!(c.lookup(5).is_none());
        c.insert(5, LineState::Shared, Some(vec![7u8; 64].into()));
        let l = c.lookup(5).unwrap();
        assert_eq!(l.state, LineState::Shared);
        assert_eq!(l.data.as_ref().unwrap()[0], 7);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // 2 sets x 2 ways; lines 0,2,4 share set 0.
        let mut c = cache(256, 2, 64);
        c.insert(0, LineState::Shared, Some(vec![0; 64].into()));
        c.insert(2, LineState::Shared, Some(vec![0; 64].into()));
        c.lookup(0); // 0 is now MRU; 2 is LRU
        let ev = c.insert(4, LineState::Shared, Some(vec![0; 64].into())).unwrap();
        assert_eq!(ev.line, 2);
        assert!(c.peek(0).is_some());
        assert!(c.peek(2).is_none());
    }

    #[test]
    fn pending_victim_predicts_eviction() {
        let mut c = cache(256, 2, 64);
        assert!(c.pending_victim(0).is_none(), "empty set");
        c.insert(0, LineState::Shared, Some(vec![0; 64].into()));
        c.insert(2, LineState::Modified, Some(vec![0; 64].into()));
        assert!(c.pending_victim(0).is_none(), "already resident");
        let victim = c.pending_victim(4).unwrap();
        assert_eq!(victim.line, 0);
        let ev = c.insert(4, LineState::Shared, Some(vec![0; 64].into())).unwrap();
        assert_eq!(ev.line, 0);
    }

    #[test]
    fn peek_does_not_touch_lru() {
        let mut c = cache(256, 2, 64);
        c.insert(0, LineState::Shared, Some(vec![0; 64].into()));
        c.insert(2, LineState::Shared, Some(vec![0; 64].into()));
        let _ = c.peek(0); // must NOT refresh line 0
        let ev = c.insert(4, LineState::Shared, Some(vec![0; 64].into())).unwrap();
        assert_eq!(ev.line, 0, "peek must not refresh LRU");
    }

    #[test]
    fn remove_clears_residency() {
        let mut c = cache(256, 2, 64);
        c.insert(0, LineState::Modified, Some(vec![9; 64].into()));
        let removed = c.remove(0).unwrap();
        assert_eq!(removed.state, LineState::Modified);
        assert!(c.lookup(0).is_none());
        assert!(c.remove(0).is_none());
    }

    #[test]
    fn read_write_bytes_roundtrip() {
        let mut c = cache(256, 2, 64);
        c.insert(1, LineState::Shared, Some(vec![0; 64].into()));
        c.write_bytes(Addr(64 + 8), &42u64.to_le_bytes());
        assert_eq!(c.peek(1).unwrap().state, LineState::Modified);
        let mut buf = [0u8; 8];
        c.read_bytes(Addr(64 + 8), &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 42);
    }

    #[test]
    #[should_panic(expected = "crosses line boundary")]
    fn cross_line_access_panics() {
        let mut c = cache(256, 2, 64);
        c.insert(0, LineState::Shared, Some(vec![0; 64].into()));
        let mut buf = [0u8; 8];
        c.read_bytes(Addr(60), &mut buf);
    }

    #[test]
    #[should_panic(expected = "already-resident")]
    fn double_insert_panics() {
        let mut c = cache(256, 2, 64);
        c.insert(0, LineState::Shared, Some(vec![0; 64].into()));
        c.insert(0, LineState::Shared, Some(vec![0; 64].into()));
    }

    #[test]
    fn tag_only_cache_for_l1i() {
        let mut c = Cache::new(
            &CacheConfig {
                size_bytes: 1024,
                associativity: 4,
                line_size: 64,
                access_latency: Cycles(1),
            },
            false,
        );
        c.insert(7, LineState::Shared, None);
        assert!(c.lookup(7).is_some());
        assert!(c.lookup(7).unwrap().data.is_none());
    }

    #[test]
    fn save_restore_preserves_contents_and_lru() {
        let mut c = cache(256, 2, 64);
        c.insert(0, LineState::Shared, Some(vec![1; 64].into()));
        c.insert(2, LineState::Modified, Some(vec![2; 64].into()));
        c.lookup(0); // 0 becomes MRU
        let mut e = Enc::new();
        c.save(&mut e);
        let buf = e.finish();
        let mut fresh = cache(256, 2, 64);
        fresh.restore(&mut Dec::new(&buf)).unwrap();
        assert_eq!(fresh.resident_lines(), 2);
        assert_eq!(fresh.peek(2).unwrap().state, LineState::Modified);
        assert_eq!(fresh.peek(2).unwrap().data.as_ref().unwrap()[0], 2);
        // LRU order survives: inserting into the full set evicts 2, not 0.
        let ev = fresh.insert(4, LineState::Shared, Some(vec![0; 64].into())).unwrap();
        assert_eq!(ev.line, 2);
    }

    #[test]
    fn restore_rejects_wrong_geometry() {
        let mut big = cache(1024, 2, 64);
        big.insert(0, LineState::Shared, Some(vec![0; 64].into()));
        let mut e = Enc::new();
        big.save(&mut e);
        let buf = e.finish();
        let mut small = cache(256, 2, 64);
        assert!(small.restore(&mut Dec::new(&buf)).is_err(), "set count differs");
        // Tag-only target rejects data-carrying lines.
        let mut tag_only = Cache::new(
            &CacheConfig {
                size_bytes: 1024,
                associativity: 2,
                line_size: 64,
                access_latency: Cycles(1),
            },
            false,
        );
        assert!(tag_only.restore(&mut Dec::new(&buf)).is_err());
        // Truncation is typed, not a panic.
        let mut same = cache(1024, 2, 64);
        assert!(same.restore(&mut Dec::new(&buf[..buf.len() - 10])).is_err());
        assert!(same.restore(&mut Dec::new(&buf)).is_ok());
    }

    #[test]
    fn probe_read_hits_and_respects_seqlock() {
        let mut c = cache(256, 2, 64);
        let seq = SeqCount::new();
        c.insert(1, LineState::Shared, Some(vec![5u8; 64].into()));
        c.write_bytes(Addr(64 + 8), &99u64.to_le_bytes());
        let mut buf = [0u8; 8];
        // Hit: reads the written bytes without the (absent) tile lock.
        assert!(unsafe { Cache::probe_read(&c, &seq, 1, 8, &mut buf) });
        assert_eq!(u64::from_le_bytes(buf), 99);
        // Miss: absent line.
        assert!(!unsafe { Cache::probe_read(&c, &seq, 3, 8, &mut buf) });
        // Writer in progress: probe must decline.
        seq.begin_write();
        assert!(!unsafe { Cache::probe_read(&c, &seq, 1, 8, &mut buf) });
        seq.end_write();
        assert!(unsafe { Cache::probe_read(&c, &seq, 1, 8, &mut buf) });
    }

    #[test]
    fn probe_read_refreshes_lru() {
        let mut c = cache(256, 2, 64);
        let seq = SeqCount::new();
        c.insert(0, LineState::Shared, Some(vec![0; 64].into()));
        c.insert(2, LineState::Shared, Some(vec![0; 64].into()));
        let mut buf = [0u8; 1];
        // Probe touches 0, making 2 the LRU victim.
        assert!(unsafe { Cache::probe_read(&c, &seq, 0, 0, &mut buf) });
        let ev = c.insert(4, LineState::Shared, Some(vec![0; 64].into())).unwrap();
        assert_eq!(ev.line, 2, "probe hit must refresh LRU like a locked lookup");
    }

    #[test]
    fn probe_read_declines_tag_only_cache() {
        let mut c = Cache::new(
            &CacheConfig {
                size_bytes: 1024,
                associativity: 4,
                line_size: 64,
                access_latency: Cycles(1),
            },
            false,
        );
        let seq = SeqCount::new();
        c.insert(7, LineState::Shared, None);
        let mut buf = [0u8; 1];
        assert!(!unsafe { Cache::probe_read(&c, &seq, 7, 0, &mut buf) });
    }

    proptest! {
        /// The cache never exceeds capacity and matches a reference LRU model.
        #[test]
        fn matches_reference_lru(accesses in proptest::collection::vec(0u64..32, 1..300)) {
            // 4 sets x 2 ways, 64B lines.
            let mut c = cache(512, 2, 64);
            // Reference: per-set ordered list of lines, most recent last.
            let mut reference: Vec<Vec<u64>> = vec![Vec::new(); 4];
            for line in accesses {
                let set = (line % 4) as usize;
                if c.lookup(line).is_none() {
                    c.insert(line, LineState::Shared, Some(vec![0; 64].into()));
                }
                // Update reference model.
                reference[set].retain(|&l| l != line);
                reference[set].push(line);
                if reference[set].len() > 2 {
                    reference[set].remove(0);
                }
                prop_assert!(c.resident_lines() <= c.capacity_lines());
            }
            // Residency must match the reference exactly.
            for (set, lines) in reference.iter().enumerate() {
                for &l in lines {
                    prop_assert!(c.peek(l).is_some(), "line {l} missing from set {set}");
                }
            }
            let expected: usize = reference.iter().map(Vec::len).sum();
            prop_assert_eq!(c.resident_lines(), expected);
        }
    }
}
