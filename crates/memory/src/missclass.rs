//! Cache-miss classification (paper §4.4, Figure 8).
//!
//! The Figure 8 study breaks misses down by type as the line size varies:
//! *cold* (first reference by this tile), *capacity* (the tile itself evicted
//! the line), *true sharing* (the line was invalidated by another tile's
//! write and the missing access touches a word actually written remotely),
//! and *false sharing* (invalidated, but the missing access touches only
//! words nobody else wrote — pure line-granularity interference).
//!
//! Classification follows the standard Dubois/Torrellas approach at word
//! (4-byte) granularity: when a tile loses a line we record *why* (eviction
//! vs invalidation); while it is gone we accumulate the mask of words other
//! tiles write; at the next miss the accessed words are compared against the
//! mask.

use std::collections::HashMap;

use graphite_base::{SimError, TileId};
use graphite_ckpt::{corrupted, Dec, Enc};
use parking_lot::Mutex;

/// Why a miss happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissKind {
    /// First access to the line by this tile.
    Cold,
    /// The tile evicted the line itself (capacity/conflict).
    Capacity,
    /// Invalidated remotely; the missing access reads truly-communicated
    /// data.
    TrueSharing,
    /// Invalidated remotely; the missing access touches only words the
    /// remote writer did not write.
    FalseSharing,
}

impl MissKind {
    /// All kinds, in report order.
    pub const ALL: [MissKind; 4] =
        [MissKind::Cold, MissKind::Capacity, MissKind::TrueSharing, MissKind::FalseSharing];

    /// Short label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            MissKind::Cold => "cold",
            MissKind::Capacity => "capacity",
            MissKind::TrueSharing => "true-sharing",
            MissKind::FalseSharing => "false-sharing",
        }
    }
}

/// Word size used for true/false sharing discrimination.
const WORD: u64 = 4;

#[derive(Debug, Clone, Copy, Default)]
struct Departed {
    invalidated: bool,
    /// Words written by other tiles since this tile lost the line
    /// (bit i ⇔ word i). 64 bits cover lines up to 256 bytes.
    written_mask: u64,
}

#[derive(Debug, Default)]
struct LineHistory {
    /// Tiles that have ever cached the line (for cold classification).
    touched: Vec<TileId>,
    /// Per departed tile: why it lost the line and what was written since.
    departed: HashMap<TileId, Departed>,
}

/// Tracks per-line access history and classifies every miss.
///
/// Disabled by default (zero overhead besides a branch); the Figure 8 bench
/// enables it.
///
/// # Examples
///
/// ```
/// use graphite_base::TileId;
/// use graphite_memory::missclass::{MissClassifier, MissKind};
///
/// let mc = MissClassifier::new(true, 64);
/// // Tile 0's first touch of line 5 is a cold miss.
/// assert_eq!(mc.classify_fill(TileId(0), 5, 0, 4), Some(MissKind::Cold));
/// // Tile 1 writes word 0, invalidating tile 0 ...
/// mc.on_departure(TileId(0), 5, true);
/// mc.on_write(TileId(1), 5, 0, 4);
/// // ... so tile 0's re-read of word 0 is a true-sharing miss,
/// assert_eq!(mc.classify_fill(TileId(0), 5, 0, 4), Some(MissKind::TrueSharing));
/// ```
#[derive(Debug)]
pub struct MissClassifier {
    enabled: bool,
    line_size: u32,
    lines: Mutex<HashMap<u64, LineHistory>>,
}

impl MissClassifier {
    /// Creates a classifier. When `enabled` is false all hooks are no-ops
    /// and [`MissClassifier::classify_fill`] returns `None`.
    pub fn new(enabled: bool, line_size: u32) -> Self {
        MissClassifier { enabled, line_size, lines: Mutex::new(HashMap::new()) }
    }

    /// Whether classification is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    fn word_mask(&self, offset: u64, len: u64) -> u64 {
        let first = offset / WORD;
        let last = (offset + len.max(1) - 1) / WORD;
        let last = last.min(self.line_size as u64 / WORD).min(63);
        let mut mask = 0u64;
        for w in first..=last {
            mask |= 1 << w;
        }
        mask
    }

    /// Records that `tile` lost `line` — `invalidated` distinguishes remote
    /// invalidation from self-eviction.
    pub fn on_departure(&self, tile: TileId, line: u64, invalidated: bool) {
        if !self.enabled {
            return;
        }
        let mut lines = self.lines.lock();
        let hist = lines.entry(line).or_default();
        hist.departed.insert(tile, Departed { invalidated, written_mask: 0 });
    }

    /// Records a write by `tile` covering `len` bytes at `offset` within
    /// `line`; accumulates into every *other* departed tile's written mask.
    pub fn on_write(&self, tile: TileId, line: u64, offset: u64, len: u64) {
        if !self.enabled {
            return;
        }
        let mask = self.word_mask(offset, len);
        let mut lines = self.lines.lock();
        if let Some(hist) = lines.get_mut(&line) {
            for (t, d) in hist.departed.iter_mut() {
                if *t != tile {
                    d.written_mask |= mask;
                }
            }
        }
    }

    /// Classifies a fill of `line` by `tile` whose triggering access covers
    /// `len` bytes at `offset`. Returns `None` when disabled.
    pub fn classify_fill(
        &self,
        tile: TileId,
        line: u64,
        offset: u64,
        len: u64,
    ) -> Option<MissKind> {
        if !self.enabled {
            return None;
        }
        let mask = self.word_mask(offset, len);
        let mut lines = self.lines.lock();
        let hist = lines.entry(line).or_default();
        if !hist.touched.contains(&tile) {
            hist.touched.push(tile);
            hist.departed.remove(&tile);
            return Some(MissKind::Cold);
        }
        let kind = match hist.departed.remove(&tile) {
            Some(d) if d.invalidated => {
                if d.written_mask & mask != 0 {
                    MissKind::TrueSharing
                } else {
                    MissKind::FalseSharing
                }
            }
            _ => MissKind::Capacity,
        };
        Some(kind)
    }

    /// Serializes the classification history (checkpoint). Lines and
    /// departed tiles are emitted in sorted order so identical states always
    /// produce identical bytes.
    pub fn save(&self, out: &mut Enc) {
        out.u8(self.enabled as u8);
        if !self.enabled {
            return;
        }
        let lines = self.lines.lock();
        let mut keys: Vec<u64> = lines.keys().copied().collect();
        keys.sort_unstable();
        out.u64(keys.len() as u64);
        for k in keys {
            let hist = &lines[&k];
            out.u64(k);
            out.u32(hist.touched.len() as u32);
            for t in &hist.touched {
                out.u32(t.0);
            }
            let mut dep: Vec<(TileId, Departed)> =
                hist.departed.iter().map(|(t, d)| (*t, *d)).collect();
            dep.sort_unstable_by_key(|(t, _)| t.0);
            out.u32(dep.len() as u32);
            for (t, d) in dep {
                out.u32(t.0);
                out.u8(d.invalidated as u8);
                out.u64(d.written_mask);
            }
        }
    }

    /// Restores history captured by [`MissClassifier::save`].
    ///
    /// # Errors
    ///
    /// Returns a typed checkpoint error when the payload's enabled flag does
    /// not match this classifier or the payload is malformed.
    pub fn restore(&self, dec: &mut Dec<'_>) -> Result<(), SimError> {
        let enabled = dec.u8()? != 0;
        if enabled != self.enabled {
            return Err(corrupted("missclass"));
        }
        if !enabled {
            return Ok(());
        }
        let n = dec.u64()?;
        let mut map = HashMap::new();
        for _ in 0..n {
            let line = dec.u64()?;
            let mut hist = LineHistory::default();
            for _ in 0..dec.u32()? {
                hist.touched.push(TileId(dec.u32()?));
            }
            for _ in 0..dec.u32()? {
                let t = TileId(dec.u32()?);
                let invalidated = dec.u8()? != 0;
                let written_mask = dec.u64()?;
                hist.departed.insert(t, Departed { invalidated, written_mask });
            }
            if map.insert(line, hist).is_some() {
                return Err(corrupted("missclass"));
            }
        }
        *self.lines.lock() = map;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc() -> MissClassifier {
        MissClassifier::new(true, 64)
    }

    #[test]
    fn disabled_is_noop() {
        let m = MissClassifier::new(false, 64);
        assert!(!m.enabled());
        assert_eq!(m.classify_fill(TileId(0), 1, 0, 4), None);
    }

    #[test]
    fn first_touch_is_cold_per_tile() {
        let m = mc();
        assert_eq!(m.classify_fill(TileId(0), 9, 0, 4), Some(MissKind::Cold));
        assert_eq!(m.classify_fill(TileId(1), 9, 0, 4), Some(MissKind::Cold));
    }

    #[test]
    fn self_eviction_is_capacity() {
        let m = mc();
        m.classify_fill(TileId(0), 9, 0, 4);
        m.on_departure(TileId(0), 9, false);
        assert_eq!(m.classify_fill(TileId(0), 9, 0, 4), Some(MissKind::Capacity));
    }

    #[test]
    fn invalidation_with_overlap_is_true_sharing() {
        let m = mc();
        m.classify_fill(TileId(0), 9, 8, 4); // tile0 reads word 2
        m.on_departure(TileId(0), 9, true); // tile1's write invalidates it
        m.on_write(TileId(1), 9, 8, 4); // tile1 writes word 2
        assert_eq!(m.classify_fill(TileId(0), 9, 8, 4), Some(MissKind::TrueSharing));
    }

    #[test]
    fn invalidation_without_overlap_is_false_sharing() {
        let m = mc();
        m.classify_fill(TileId(0), 9, 0, 4); // tile0 uses word 0
        m.on_departure(TileId(0), 9, true);
        m.on_write(TileId(1), 9, 32, 4); // tile1 writes word 8
        assert_eq!(m.classify_fill(TileId(0), 9, 0, 4), Some(MissKind::FalseSharing));
    }

    #[test]
    fn writers_own_mask_not_counted() {
        let m = mc();
        m.classify_fill(TileId(0), 9, 0, 4);
        m.on_departure(TileId(0), 9, true);
        // Tile 0's own (hypothetical) write must not mark its own mask.
        m.on_write(TileId(0), 9, 0, 4);
        assert_eq!(m.classify_fill(TileId(0), 9, 0, 4), Some(MissKind::FalseSharing));
    }

    #[test]
    fn multi_word_access_masks() {
        let m = mc();
        m.classify_fill(TileId(0), 9, 0, 4);
        m.on_departure(TileId(0), 9, true);
        m.on_write(TileId(1), 9, 4, 8); // words 1..2
                                        // Re-access spanning words 0..3 overlaps the written words.
        assert_eq!(m.classify_fill(TileId(0), 9, 0, 16), Some(MissKind::TrueSharing));
    }

    #[test]
    fn labels() {
        assert_eq!(MissKind::Cold.label(), "cold");
        assert_eq!(MissKind::ALL.len(), 4);
    }
}
