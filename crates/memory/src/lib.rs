//! The Graphite-rs memory subsystem (paper §3.2).
//!
//! This crate implements both roles the paper assigns to the memory system:
//!
//! * **Functional**: maintaining a single, coherent address space for
//!   application threads spread over simulated host processes. Caches hold
//!   the application's actual bytes; the directory entry holds the DRAM
//!   copy; coherence transactions move real data.
//! * **Modeling**: cache hierarchies (L1I/L1D/L2, LRU, configurable),
//!   directory-based MSI coherence in three flavours (full-map, limited
//!   Dir_iNB, LimitLESS), DRAM controllers with lax queueing, and
//!   network-priced protocol hops.
//!
//! It also provides the simulated address-space layout and the dynamic
//! memory manager the simulator substitutes for the OS (paper §3.2.1), and
//! the Figure 8 cache-miss classifier.
//!
//! Entry points: [`MemorySystem`] for the coherent memory engine,
//! [`SegmentAllocator`] + [`addr::layout`] for address-space management.

pub mod addr;
pub mod cache;
pub mod directory;
pub mod dram;
pub mod missclass;
pub mod mshr;
pub mod system;

pub use addr::{Addr, SegmentAllocator};
pub use missclass::MissKind;
pub use system::{MemCost, MemStats, MemorySystem, PerTileMemCounters};
