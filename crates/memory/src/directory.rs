//! Directory state for the distributed cache-coherence engine (paper §3.2).
//!
//! The directory is uniformly distributed across all tiles: the *home* of a
//! cache line is `line mod num_tiles`. Each entry records the MSI directory
//! state, the sharer set, and — because Graphite's memory system is
//! functional — the line's actual bytes (the DRAM copy).
//!
//! All three coherence schemes of the paper's Figure 9 study share this one
//! entry type; they differ only in how many sharers the "hardware" tracks
//! and what overflowing costs ([`graphite_config::CoherenceScheme`]).

use graphite_base::TileId;

/// A set of sharer tiles, stored as a bitset sized for the target.
///
/// # Examples
///
/// ```
/// use graphite_base::TileId;
/// use graphite_memory::directory::SharerSet;
/// let mut s = SharerSet::new(64);
/// s.insert(TileId(3));
/// s.insert(TileId(40));
/// assert_eq!(s.count(), 2);
/// assert!(s.contains(TileId(3)));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![TileId(3), TileId(40)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharerSet {
    words: Vec<u64>,
    count: u32,
}

impl SharerSet {
    /// An empty set able to hold tiles `0..tiles`.
    pub fn new(tiles: u32) -> Self {
        SharerSet { words: vec![0; tiles.div_ceil(64) as usize], count: 0 }
    }

    /// Adds a tile; returns true if it was newly inserted.
    pub fn insert(&mut self, t: TileId) -> bool {
        let (w, b) = (t.index() / 64, t.index() % 64);
        let bit = 1u64 << b;
        if self.words[w] & bit == 0 {
            self.words[w] |= bit;
            self.count += 1;
            true
        } else {
            false
        }
    }

    /// Removes a tile; returns true if it was present.
    pub fn remove(&mut self, t: TileId) -> bool {
        let (w, b) = (t.index() / 64, t.index() % 64);
        let bit = 1u64 << b;
        if self.words[w] & bit != 0 {
            self.words[w] &= !bit;
            self.count -= 1;
            true
        } else {
            false
        }
    }

    /// Membership test.
    pub fn contains(&self, t: TileId) -> bool {
        let (w, b) = (t.index() / 64, t.index() % 64);
        self.words[w] & (1u64 << b) != 0
    }

    /// Number of sharers.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// True when no tile shares the line.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterates sharers in ascending tile order.
    pub fn iter(&self) -> impl Iterator<Item = TileId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| {
                if w & (1u64 << b) != 0 {
                    Some(TileId((wi * 64 + b) as u32))
                } else {
                    None
                }
            })
        })
    }

    /// The lowest-numbered sharer, if any.
    pub fn first(&self) -> Option<TileId> {
        self.iter().next()
    }

    /// Removes every sharer.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.count = 0;
    }
}

/// MSI directory state of one line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirState {
    /// No cache holds the line; the directory's data copy is current.
    Uncached,
    /// One or more caches hold read-only copies; the data copy is current.
    Shared,
    /// Exactly one cache holds the line with write permission (Modified, or
    /// Exclusive under MESI). The data copy is stale if the owner's copy is
    /// dirty.
    Owned(TileId),
}

/// One directory entry: protocol state plus the functional memory copy.
#[derive(Debug, Clone)]
pub struct DirEntry {
    /// MSI state.
    pub state: DirState,
    /// Sharers (meaningful in `Shared`; kept empty otherwise).
    pub sharers: SharerSet,
    /// The DRAM copy of the line. Stale while `Modified`.
    pub data: Box<[u8]>,
}

impl DirEntry {
    /// A fresh, zero-filled, uncached entry.
    pub fn new(tiles: u32, line_size: u32) -> Self {
        DirEntry {
            state: DirState::Uncached,
            sharers: SharerSet::new(tiles),
            data: vec![0u8; line_size as usize].into(),
        }
    }

    /// Checks the MSI invariants; used by tests and debug assertions.
    ///
    /// * `Uncached` ⇒ no sharers;
    /// * `Modified` ⇒ no sharers tracked (owner held separately);
    /// * `Shared` ⇒ at least one sharer.
    pub fn invariants_hold(&self) -> bool {
        match self.state {
            DirState::Uncached => self.sharers.is_empty(),
            DirState::Owned(_) => self.sharers.is_empty(),
            DirState::Shared => !self.sharers.is_empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sharer_set_basics() {
        let mut s = SharerSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(TileId(0)));
        assert!(s.insert(TileId(129)));
        assert!(!s.insert(TileId(0)), "double insert reports false");
        assert_eq!(s.count(), 2);
        assert!(s.contains(TileId(129)));
        assert_eq!(s.first(), Some(TileId(0)));
        assert!(s.remove(TileId(0)));
        assert!(!s.remove(TileId(0)));
        assert_eq!(s.first(), Some(TileId(129)));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn entry_invariants() {
        let mut e = DirEntry::new(8, 64);
        assert!(e.invariants_hold());
        assert_eq!(e.data.len(), 64);
        e.state = DirState::Shared;
        assert!(!e.invariants_hold(), "shared with no sharers is invalid");
        e.sharers.insert(TileId(2));
        assert!(e.invariants_hold());
        e.state = DirState::Owned(TileId(2));
        assert!(!e.invariants_hold(), "owned must track no sharers");
        e.sharers.clear();
        assert!(e.invariants_hold());
    }

    proptest! {
        /// SharerSet agrees with a reference HashSet under arbitrary ops.
        #[test]
        fn sharer_set_matches_reference(ops in proptest::collection::vec((0u8..2, 0u32..200), 1..200)) {
            let mut s = SharerSet::new(200);
            let mut reference = std::collections::BTreeSet::new();
            for (op, t) in ops {
                if op == 0 {
                    prop_assert_eq!(s.insert(TileId(t)), reference.insert(t));
                } else {
                    prop_assert_eq!(s.remove(TileId(t)), reference.remove(&t));
                }
                prop_assert_eq!(s.count() as usize, reference.len());
            }
            let got: Vec<u32> = s.iter().map(|t| t.0).collect();
            let want: Vec<u32> = reference.into_iter().collect();
            prop_assert_eq!(got, want);
        }
    }
}
