//! DRAM controller timing model (paper §3.2, §4.4).
//!
//! Each controller serves a slice of total off-chip bandwidth. Queueing
//! under lax synchronization is modeled with an independent queue clock
//! referenced against the global-progress estimate (paper §3.6.1): "when a
//! packet arrives, its delay is the difference between the queue clock and
//! the global clock [and] the queue clock is incremented by the processing
//! time of the packet".

use graphite_base::{Counter, Cycles, LaxQueue};

/// One memory controller: fixed access latency plus bandwidth-derived
/// service time with lax queueing.
///
/// # Examples
///
/// ```
/// use graphite_base::Cycles;
/// use graphite_memory::dram::DramController;
///
/// // 5.13 GB/s at a 1 GHz target clock = 5.13 bytes/cycle.
/// let ctrl = DramController::new(5.13, Cycles(100));
/// let lat = ctrl.access(Cycles(0), 64);
/// // 100 fixed + ceil(64 / 5.13) = 13 service, no queueing when idle.
/// assert_eq!(lat, Cycles(113));
/// ```
#[derive(Debug)]
pub struct DramController {
    queue: LaxQueue,
    bytes_per_cycle: f64,
    access_latency: Cycles,
    /// Number of requests served.
    pub requests: Counter,
    /// Sum of queueing delays (cycles), for mean-queueing reports.
    pub queue_delay_sum: Counter,
}

impl DramController {
    /// Creates a controller with `bytes_per_cycle` of service bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not positive.
    pub fn new(bytes_per_cycle: f64, access_latency: Cycles) -> Self {
        assert!(bytes_per_cycle > 0.0, "controller bandwidth must be positive");
        DramController {
            queue: LaxQueue::new(),
            bytes_per_cycle,
            access_latency,
            requests: Counter::new(),
            queue_delay_sum: Counter::new(),
        }
    }

    /// Service time for a request of `bytes`.
    pub fn service_time(&self, bytes: u32) -> Cycles {
        Cycles((bytes as f64 / self.bytes_per_cycle).ceil() as u64)
    }

    /// Models one access at estimated global time `now`; returns total
    /// latency (fixed + queueing + service).
    pub fn access(&self, now: Cycles, bytes: u32) -> Cycles {
        let service = self.service_time(bytes);
        let qdelay = self.queue.submit(now, service);
        self.requests.incr();
        self.queue_delay_sum.add(qdelay.0);
        self.access_latency + qdelay + service
    }

    /// Mean queueing delay per request, in cycles.
    pub fn mean_queue_delay(&self) -> f64 {
        let n = self.requests.get();
        if n == 0 {
            0.0
        } else {
            self.queue_delay_sum.get() as f64 / n as f64
        }
    }

    /// Checkpoint export: `[queue_clock, requests, queue_delay_sum]`.
    pub fn export_state(&self) -> [u64; 3] {
        [self.queue.clock().0, self.requests.get(), self.queue_delay_sum.get()]
    }

    /// Overwrites the controller's mutable state with a previously exported
    /// triple (checkpoint restore).
    pub fn import_state(&self, s: [u64; 3]) {
        self.queue.set_clock(Cycles(s[0]));
        self.requests.take();
        self.requests.add(s[1]);
        self.queue_delay_sum.take();
        self.queue_delay_sum.add(s[2]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_access_has_no_queueing() {
        let c = DramController::new(8.0, Cycles(100));
        assert_eq!(c.access(Cycles(0), 64), Cycles(100 + 8));
        assert_eq!(c.mean_queue_delay(), 0.0);
    }

    #[test]
    fn saturation_builds_queue_delay() {
        let c = DramController::new(1.0, Cycles(0));
        // Three back-to-back 10-byte requests at the same instant.
        assert_eq!(c.access(Cycles(0), 10), Cycles(10));
        assert_eq!(c.access(Cycles(0), 10), Cycles(20));
        assert_eq!(c.access(Cycles(0), 10), Cycles(30));
        assert!((c.mean_queue_delay() - 10.0).abs() < 1e-12);
        assert_eq!(c.requests.get(), 3);
    }

    #[test]
    fn narrower_bandwidth_means_longer_service() {
        // This is the Figure 9 effect: per-tile controllers split total
        // bandwidth, so more tiles => slower service each.
        let wide = DramController::new(5.13, Cycles(100));
        let narrow = DramController::new(5.13 / 64.0, Cycles(100));
        assert!(narrow.service_time(64) > wide.service_time(64));
        assert_eq!(narrow.service_time(64), Cycles((64.0f64 / (5.13 / 64.0)).ceil() as u64));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_rejected() {
        let _ = DramController::new(0.0, Cycles(1));
    }
}
