//! The simulated application address space (paper §3.2.1, Figure 3).
//!
//! Graphite presents every application thread — wherever it runs — a single
//! address space partitioned into segments: code, static data, program heap,
//! dynamically allocated segments, and per-thread stacks. The simulator
//! itself implements the memory-management services an OS would normally
//! provide: it intercepts `brk`/`mmap`/`munmap` and serves dynamic memory
//! from designated parts of the space.

use std::collections::BTreeMap;
use std::fmt;

use graphite_base::SimError;

/// An address in the *simulated* (target) address space.
///
/// # Examples
///
/// ```
/// use graphite_memory::Addr;
/// let a = Addr(0x1000);
/// assert_eq!(a.offset(8), Addr(0x1008));
/// assert_eq!(a.line(64), 0x1000 / 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// This address plus a byte offset.
    #[inline]
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }

    /// The cache-line index containing this address.
    #[inline]
    pub fn line(self, line_size: u32) -> u64 {
        self.0 / line_size as u64
    }

    /// The first address of this address's cache line.
    #[inline]
    pub fn line_base(self, line_size: u32) -> Addr {
        Addr(self.0 - self.0 % line_size as u64)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// Segment boundaries of the simulated address space (Figure 3).
pub mod layout {
    use super::Addr;

    /// Base of the (reserved) code segment.
    pub const CODE_BASE: Addr = Addr(0x0000_1000);
    /// Base of static data.
    pub const STATIC_BASE: Addr = Addr(0x0010_0000);
    /// Size reserved for static data (16 MiB).
    pub const STATIC_SIZE: u64 = 16 << 20;
    /// Base of the program heap (`brk`-managed).
    pub const HEAP_BASE: Addr = Addr(0x1000_0000);
    /// Heap limit (768 MiB of heap).
    pub const HEAP_LIMIT: Addr = Addr(0x4000_0000);
    /// Base of dynamically allocated (`mmap`) segments.
    pub const MMAP_BASE: Addr = Addr(0x4000_0000);
    /// Limit of the mmap region.
    pub const MMAP_LIMIT: Addr = Addr(0x7000_0000);
    /// Base of the stack segment; thread `i`'s stack starts at
    /// `STACK_BASE + i * STACK_SIZE`.
    pub const STACK_BASE: Addr = Addr(0x7000_0000);
    /// Per-thread stack size (256 KiB).
    pub const STACK_SIZE: u64 = 256 << 10;
    /// First address of the kernel-reserved space.
    pub const KERNEL_BASE: Addr = Addr(0xF000_0000);

    /// The stack segment allotted to thread `i`.
    pub fn thread_stack(i: u32) -> (Addr, u64) {
        (Addr(STACK_BASE.0 + i as u64 * STACK_SIZE), STACK_SIZE)
    }
}

/// A first-fit free-list allocator managing one segment of the simulated
/// address space — the "dynamic memory manager that services requests for
/// dynamic memory from the application" (paper §3.2.1).
///
/// Allocations are cache-line (64-byte) aligned so that independent
/// allocations never share a coherence unit — like a real `malloc` serving
/// a multiprocessor, this prevents accidental false sharing between
/// unrelated objects (distinct from the *intra-array* false sharing the
/// Figure 8 study measures, which is a property of application layouts).
///
/// Freed blocks coalesce with free neighbours.
///
/// # Examples
///
/// ```
/// use graphite_memory::{Addr, SegmentAllocator};
/// let mut heap = SegmentAllocator::new(Addr(0x1000), 0x1000);
/// let a = heap.alloc(100).unwrap();
/// let b = heap.alloc(100).unwrap();
/// assert!(b.0 >= a.0 + 100);
/// heap.free(a).unwrap();
/// heap.free(b).unwrap();
/// assert_eq!(heap.bytes_in_use(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct SegmentAllocator {
    base: Addr,
    size: u64,
    /// Free blocks: start → length. Invariant: non-overlapping, no two
    /// adjacent blocks (they coalesce).
    free: BTreeMap<u64, u64>,
    /// Live allocations: start → length.
    live: BTreeMap<u64, u64>,
    align: u64,
}

impl SegmentAllocator {
    /// Creates an allocator over `[base, base + size)` with cache-line
    /// (64-byte) alignment.
    ///
    /// The base itself should be 64-byte aligned (all [`layout`] segment
    /// bases are).
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(base: Addr, size: u64) -> Self {
        assert!(size > 0, "segment must be non-empty");
        let mut free = BTreeMap::new();
        free.insert(base.0, size);
        SegmentAllocator { base, size, free, live: BTreeMap::new(), align: 64 }
    }

    /// Segment base address.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Total segment size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Bytes currently allocated.
    pub fn bytes_in_use(&self) -> u64 {
        self.live.values().sum()
    }

    /// Allocates `size` bytes (rounded up to the alignment), first-fit.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Syscall`] when no free block is large enough or
    /// `size` is zero.
    pub fn alloc(&mut self, size: u64) -> Result<Addr, SimError> {
        if size == 0 {
            return Err(SimError::Syscall("allocation of zero bytes".into()));
        }
        let size = size.div_ceil(self.align) * self.align;
        let found = self.free.iter().find(|(_, &len)| len >= size).map(|(&s, &l)| (s, l));
        let (start, len) = found.ok_or_else(|| {
            SimError::Syscall(format!("out of simulated memory: {size} bytes requested"))
        })?;
        self.free.remove(&start);
        if len > size {
            self.free.insert(start + size, len - size);
        }
        self.live.insert(start, size);
        Ok(Addr(start))
    }

    /// Frees a previously allocated block.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Syscall`] if `addr` is not a live allocation.
    pub fn free(&mut self, addr: Addr) -> Result<(), SimError> {
        let size = self
            .live
            .remove(&addr.0)
            .ok_or_else(|| SimError::Syscall(format!("free of unallocated address {addr}")))?;
        let mut start = addr.0;
        let mut len = size;
        // Coalesce with the next free block.
        if let Some(&next_len) = self.free.get(&(start + len)) {
            self.free.remove(&(start + len));
            len += next_len;
        }
        // Coalesce with the previous free block.
        if let Some((&prev_start, &prev_len)) = self.free.range(..start).next_back() {
            if prev_start + prev_len == start {
                self.free.remove(&prev_start);
                start = prev_start;
                len += prev_len;
            }
        }
        self.free.insert(start, len);
        Ok(())
    }

    /// The size of the live allocation at `addr`, if any.
    pub fn allocation_size(&self, addr: Addr) -> Option<u64> {
        self.live.get(&addr.0).copied()
    }

    /// Checkpoint export: the free and live maps as flat words
    /// `[free_count, (start, len)*, live_count, (start, len)*]`.
    pub fn export_state(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(2 + 2 * (self.free.len() + self.live.len()));
        out.push(self.free.len() as u64);
        for (&s, &l) in &self.free {
            out.push(s);
            out.push(l);
        }
        out.push(self.live.len() as u64);
        for (&s, &l) in &self.live {
            out.push(s);
            out.push(l);
        }
        out
    }

    /// Restores the free/live maps from [`SegmentAllocator::export_state`]
    /// words. Returns `false` (allocator untouched) when the words are
    /// misshapen or describe blocks outside this allocator's segment.
    pub fn import_state(&mut self, words: &[u64]) -> bool {
        let parse = |words: &mut &[u64]| -> Option<BTreeMap<u64, u64>> {
            let (&n, rest) = words.split_first()?;
            let n = usize::try_from(n).ok()?;
            let (pairs, rest) = rest.split_at_checked(n.checked_mul(2)?)?;
            *words = rest;
            let mut map = BTreeMap::new();
            for p in pairs.chunks_exact(2) {
                let (start, len) = (p[0], p[1]);
                if start < self.base.0 || start.checked_add(len)? > self.base.0 + self.size {
                    return None;
                }
                map.insert(start, len);
            }
            Some(map)
        };
        let mut rest = words;
        let Some(free) = parse(&mut rest) else { return false };
        let Some(live) = parse(&mut rest) else { return false };
        if !rest.is_empty() {
            return false;
        }
        self.free = free;
        self.live = live;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn addr_helpers() {
        let a = Addr(130);
        assert_eq!(a.line(64), 2);
        assert_eq!(a.line_base(64), Addr(128));
        assert_eq!(a.offset(6), Addr(136));
        assert_eq!(Addr(0x20).to_string(), "0x20");
    }

    #[test]
    fn layout_thread_stacks_disjoint() {
        let (a0, s0) = layout::thread_stack(0);
        let (a1, _) = layout::thread_stack(1);
        assert_eq!(a1.0, a0.0 + s0);
        // A large thread count still fits below kernel space.
        let (a1023, s) = layout::thread_stack(1023);
        assert!(a1023.0 + s <= layout::KERNEL_BASE.0);
    }

    #[test]
    fn alloc_free_roundtrip_and_reuse() {
        let mut a = SegmentAllocator::new(Addr(0), 1024);
        let x = a.alloc(64).unwrap();
        assert_eq!(a.allocation_size(x), Some(64));
        a.free(x).unwrap();
        let y = a.alloc(64).unwrap();
        assert_eq!(x, y, "first-fit reuses the freed block");
    }

    #[test]
    fn alloc_rounds_to_cache_line_alignment() {
        let mut a = SegmentAllocator::new(Addr(0), 1024);
        let x = a.alloc(3).unwrap();
        let y = a.alloc(3).unwrap();
        assert_eq!(y.0 - x.0, 64, "independent allocations get their own line");
        assert_eq!(x.0 % 64, 0);
    }

    #[test]
    fn exhaustion_reported() {
        let mut a = SegmentAllocator::new(Addr(0), 64);
        a.alloc(64).unwrap();
        assert!(a.alloc(8).is_err());
    }

    #[test]
    fn small_allocations_round_up_to_a_line() {
        let mut a = SegmentAllocator::new(Addr(0), 128);
        let x = a.alloc(1).unwrap();
        assert_eq!(a.allocation_size(x), Some(64));
    }

    #[test]
    fn zero_alloc_rejected() {
        let mut a = SegmentAllocator::new(Addr(0), 64);
        assert!(a.alloc(0).is_err());
    }

    #[test]
    fn double_free_rejected() {
        let mut a = SegmentAllocator::new(Addr(0), 64);
        let x = a.alloc(8).unwrap();
        a.free(x).unwrap();
        assert!(a.free(x).is_err());
    }

    #[test]
    fn coalescing_restores_full_block() {
        let mut a = SegmentAllocator::new(Addr(0), 256);
        let xs: Vec<_> = (0..4).map(|_| a.alloc(64).unwrap()).collect();
        // Free out of order to exercise both coalescing directions.
        a.free(xs[1]).unwrap();
        a.free(xs[3]).unwrap();
        a.free(xs[0]).unwrap();
        a.free(xs[2]).unwrap();
        assert_eq!(a.bytes_in_use(), 0);
        // The whole segment is one free block again: a max-size alloc works.
        assert!(a.alloc(256).is_ok());
    }

    #[test]
    fn export_import_state_roundtrip() {
        let mut a = SegmentAllocator::new(Addr(0x1000), 4096);
        let x = a.alloc(100).unwrap();
        let y = a.alloc(200).unwrap();
        a.free(x).unwrap();
        let words = a.export_state();
        let mut b = SegmentAllocator::new(Addr(0x1000), 4096);
        assert!(b.import_state(&words));
        assert_eq!(b.bytes_in_use(), a.bytes_in_use());
        assert_eq!(b.allocation_size(y), a.allocation_size(y));
        // The restored allocator continues exactly like the original.
        assert_eq!(a.alloc(64).unwrap(), b.alloc(64).unwrap());
        // Misshapen or out-of-segment words are rejected without mutation.
        assert!(!b.import_state(&[99]));
        assert!(!b.import_state(&[1, 0xFFFF_0000, 64, 0]), "block outside segment");
        assert_eq!(b.bytes_in_use(), a.bytes_in_use());
    }

    proptest! {
        /// Live allocations never overlap and always stay in the segment.
        #[test]
        fn allocations_never_overlap(ops in proptest::collection::vec((0u8..2, 1u64..200), 1..60)) {
            let mut a = SegmentAllocator::new(Addr(0x1000), 8192);
            let mut live: Vec<(Addr, u64)> = Vec::new();
            for (op, size) in ops {
                if op == 0 || live.is_empty() {
                    if let Ok(addr) = a.alloc(size) {
                        let rounded = size.div_ceil(64) * 64;
                        prop_assert!(addr.0 >= 0x1000);
                        prop_assert!(addr.0 + rounded <= 0x1000 + 8192);
                        for &(other, osz) in &live {
                            let disjoint = addr.0 + rounded <= other.0 || other.0 + osz <= addr.0;
                            prop_assert!(disjoint, "overlap: {addr} vs {other}");
                        }
                        live.push((addr, rounded));
                    }
                } else {
                    let (addr, _) = live.swap_remove(size as usize % live.len());
                    a.free(addr).unwrap();
                }
            }
            let expect: u64 = live.iter().map(|&(_, s)| s).sum();
            prop_assert_eq!(a.bytes_in_use(), expect);
        }
    }
}
